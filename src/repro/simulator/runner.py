"""Experiment runner: the one executor behind every sweep.

The paper's figures are produced by sweeping a set of configurations over
a set of benchmarks (and usually over L1 cache sizes).  Those sweeps are
declared as flat lists of typed :class:`~repro.simulator.plan.SimTask`
(see :mod:`repro.simulator.plan`); this module provides the executor that
runs them -- inline or over a ``multiprocessing`` pool -- plus a workload
cache so each synthetic program is built only once per process, and the
environment-controlled defaults used by the benchmark harness.

Sweeps are embarrassingly parallel (one process per simulation), so
``run_tasks`` accepts ``jobs=N`` to fan out over a pool.  Scheduling is
**workload-affine**: tasks are grouped by benchmark and the groups --
not individual tasks -- are placed onto the pool, so one worker
compiles/loads each benchmark's synthetic program, compiled trace and
sampling artifacts exactly once and serves every configuration of that
benchmark; artifacts missing from the persistent store
(:mod:`repro.cache`) are therefore computed by exactly one worker and
published for every later process.  The pool itself is shared across
``run_tasks`` calls (and hence across every ``ExperimentPlan.run`` of a
CLI invocation such as ``repro-clgp figure all``), so workers keep their
in-memory caches between sweeps.  ``jobs=1`` (the default) runs inline
with identical results and identical ordering.  Tasks flagged
``sampled=True`` dispatch to the sampled-simulation runner in
:mod:`repro.sampling` instead of a full run.

The pool drive loop is **supervised**: workers announce each chunk they
pick up over a sentinel queue before running it, so when a worker
process dies (OOM kill, crash, injected chaos -- see
:mod:`repro.faults`) the supervisor attributes the loss to exactly the
chunks that were on it, re-dispatches only their unfinished tasks with
exponential backoff, and lets ``multiprocessing.Pool`` respawn the
worker -- a sweep survives worker loss instead of hanging on a result
that will never arrive.  Each task has a bounded retry budget
(``max_retries``, env ``REPRO_MAX_RETRIES``) and an optional per-task
deadline (``task_timeout``); a task that exhausts either surfaces a
typed :class:`~repro.simulator.plan.TaskFailure` in its result slot and
the rest of the sweep completes normally.

Workers and the parent all publish through the artifact store's
advisory cross-process locking (see :mod:`repro.cache.store`), so many
*runner processes* -- not just many workers of one runner -- may share
one ``.repro-cache/`` while ``cache gc``/``fsck`` run against it.
"""

from __future__ import annotations

import atexit
import multiprocessing
import itertools
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .. import faults
from ..cache.traces import ensure_compiled_trace
from ..workloads.spec2000 import DEFAULT_MIX, SPECINT2000_NAMES, profile_for
from ..workloads.trace import Workload, build_workload
from .config import SimulationConfig
from .plan import SegmentTask, SimTask, TaskFailure, TaskFailureError, TaskOutcome
from .simulator import _DEFAULT_MAX_CPI, Simulator
from .stats import SimulationResult

#: Cache of built workloads, keyed by (benchmark name, seed).
_WORKLOAD_CACHE: Dict[tuple, Workload] = {}


def get_workload(name: str) -> Workload:
    """Build (or fetch from cache) the synthetic workload for a benchmark."""
    return get_workload_for_profile(profile_for(name))


def get_workload_for_profile(profile) -> Workload:
    """Build (or fetch from cache) the workload for a profile.

    Keyed like :func:`get_workload` so a profile that *is* a registered
    benchmark shares its cache slot; segment tasks ship profiles rather
    than names so sampled runs over unregistered workloads (tests, ad-hoc
    profiles) can still fan their intervals out.
    """
    key = (profile.name, profile.seed)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = build_workload(profile)
    return _WORKLOAD_CACHE[key]


def clear_workload_cache() -> None:
    _WORKLOAD_CACHE.clear()


def clear_process_caches() -> None:
    """Drop every per-process in-memory cache (workloads, warm-up
    artifacts, functional base passes, checkpoints, compiled traces).

    Leaves the persistent artifact store untouched: afterwards the
    process behaves like a fresh CLI invocation, which is exactly what
    the cold-vs-warm cache benchmarks and tests need to isolate the
    on-disk tier.
    """
    from ..cache.traces import clear_trace_cache
    from ..sampling.checkpoint import clear_checkpoint_store
    from ..sampling.proxy import clear_base_profile_cache
    from .warming import clear_warmup_cache

    clear_workload_cache()
    clear_trace_cache()
    clear_checkpoint_store()
    clear_base_profile_cache()
    clear_warmup_cache()


# ----------------------------------------------------------------------
# environment-controlled defaults for the benchmark harness
# ----------------------------------------------------------------------
def bench_instruction_budget(default: int = 20_000) -> int:
    """Dynamic instructions per run (env: ``REPRO_BENCH_INSTRUCTIONS``)."""
    try:
        return max(1000, int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", default)))
    except ValueError:
        return default


def bench_benchmark_names(default: Optional[Sequence[str]] = None) -> List[str]:
    """Benchmarks to run (env: ``REPRO_BENCH_BENCHMARKS``, ``all`` for the
    full SPECint2000 list)."""
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS", "")
    if not raw:
        return list(default if default is not None else DEFAULT_MIX)
    if raw.strip().lower() == "all":
        return list(SPECINT2000_NAMES)
    names = [n.strip() for n in raw.split(",") if n.strip()]
    for name in names:
        profile_for(name)  # validate early
    return names


def bench_l1_sizes(default: Optional[Sequence[int]] = None) -> List[int]:
    """L1 sizes for sweeps (env: ``REPRO_BENCH_SIZES``, comma-separated,
    suffixes ``K`` allowed)."""
    raw = os.environ.get("REPRO_BENCH_SIZES", "")
    if not raw:
        return list(default) if default is not None else [256, 1024, 4096, 16384, 65536]

    def parse(token: str) -> int:
        token = token.strip().upper()
        if token.endswith("KB"):
            return int(float(token[:-2]) * 1024)
        if token.endswith("K"):
            return int(float(token[:-1]) * 1024)
        if token.endswith("B"):
            return int(token[:-1])
        return int(token)

    return [parse(t) for t in raw.split(",") if t.strip()]


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def _execute_single(
    config: SimulationConfig,
    benchmark: str,
    max_instructions: Optional[int] = None,
) -> SimulationResult:
    """Run one configuration on one benchmark (the executor primitive
    behind every task; the public entry point is :class:`repro.api.Session`).

    Full runs are deterministic, so with the artifact cache enabled the
    complete :class:`SimulationResult` of an earlier invocation replays
    byte-identically from the store (``--no-result-cache`` /
    ``ExecutionOptions(result_cache=False)`` forces resimulation); a hit
    needs only the workload's *identity*, not the built program.
    """
    from ..cache.results import load_cached_result, store_result

    profile = profile_for(benchmark)
    total = max_instructions or config.max_instructions
    cached = load_cached_result(config, profile.name, profile.seed, total)
    if cached is not None:
        return cached
    workload = get_workload(benchmark)
    # With the artifact cache enabled the correct-path walk replays from
    # a compiled trace (persisted once per workload); disabled, the
    # walker-backed stream produces the bit-identical sequence.
    ensure_compiled_trace(
        workload, max(total, config.resolved_warmup_instructions())
    )
    # Imported lazily: repro.sampling imports this module.
    from ..sampling.checkpoint import DEFAULT_STORE

    simulator = Simulator(config, workload)
    if total:
        # A completed smaller-budget run of the same configuration left
        # its end state as a frontier checkpoint: resume the timed loop
        # from there instead of resimulating the shared prefix
        # (bit-identical -- the budget only decides when to stop).
        restored = DEFAULT_STORE.frontier_checkpoint(config, workload, total)
        if restored is not None:
            simulator.restore(restored[1])
    result = simulator.run(max_instructions)
    if total:
        committed = result.committed_instructions
        limit = config.max_cycles or total * _DEFAULT_MAX_CPI
        if (committed >= total and result.cycles < limit
                and not DEFAULT_STORE.has_frontier(config, workload,
                                                   committed)):
            # Completed without hitting the cycle clamp: the end state is
            # exact mid-run state, safe for any larger budget to resume.
            DEFAULT_STORE.publish_frontier(config, workload, committed,
                                           simulator.snapshot())
    store_result(config, profile.name, profile.seed, total, result)
    return result


def _run_task(task: Union[SimTask, tuple]) -> SimulationResult:
    """Pool worker: run one :class:`SimTask` (or legacy task tuple).

    Top-level function so it pickles; the workload cache is the worker
    process's own module-global, so each worker builds a given synthetic
    program at most once no matter how many tasks it serves.  Sampled
    tasks dispatch to the sampled-simulation runner in
    :mod:`repro.sampling`, whose per-process checkpoint/selection caches
    play the same role for the warm-up and profiling passes.
    """
    if isinstance(task, SegmentTask):
        # One contiguous stretch of a sampled run's intervals (the
        # intra-run parallel path; see repro.sampling.sampled).
        from ..sampling.sampled import _execute_segment

        return _execute_segment(task)
    if isinstance(task, SimTask):
        if task.sampled:
            # Imported lazily: repro.sampling imports this module.
            from ..sampling.sampled import _execute_sampled

            return _execute_sampled(
                task.config, task.benchmark,
                max_instructions=task.max_instructions,
                spec=task.sampling,
                interval_jobs=task.interval_jobs,
            )
        return _execute_single(task.config, task.benchmark,
                               task.max_instructions)
    config, benchmark, max_instructions = task
    return _execute_single(config, benchmark, max_instructions)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/0 -> all cores, negative ->
    ValueError, otherwise the value itself."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError("jobs must be >= 1 (or None/0 for all cores)")
    return jobs


# ----------------------------------------------------------------------
# the shared worker pool (reused across run_tasks / ExperimentPlan.run
# calls so workers keep their in-memory caches between sweeps)
# ----------------------------------------------------------------------
_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_PROCESSES = 0
_POOL_CACHE_STATE: Optional[tuple] = None
#: Parent-side handle of the worker start-event queue (one per pool).
_POOL_EVENTS = None
#: Worker-side handle of the same queue, installed by ``_worker_init``.
_WORKER_EVENTS = None
#: Serializes pool build/teardown and the user count below; reentrant
#: because ``_shared_pool`` may call ``shutdown_pool`` while holding it.
_POOL_GUARD = threading.RLock()
#: Supervisors currently fanned out over the shared pool.  A cancelled
#: run only tears the pool down when it is the sole user -- with the
#: execution gate admitting same-policy sessions concurrently, another
#: supervisor's sweep may still be in flight on the same workers.
_POOL_USERS = 0

#: chunk_id -> the dispatching supervisor's in-flight entry.  Worker
#: pickup sentinels arrive on one queue shared by every concurrent
#: supervisor; this registry routes each event to the supervisor that
#: owns the chunk instead of letting whichever supervisor drains the
#: queue first silently drop its siblings' attributions.
_PICKUP_LOCK = threading.Lock()
_PICKUP_ENTRIES: Dict[int, dict] = {}


def _worker_init(cache_dir: str, cache_on: bool, result_cache_on: bool,
                 fault_plan=None, events=None) -> None:
    """Apply the parent's resolved artifact-cache settings in a worker.

    ``configure()``/``--no-cache`` state lives in module globals, which
    spawn-start platforms do not inherit (and forked workers freeze at
    fork time); passing the resolved values through the pool initializer
    keeps every worker on the parent's store (and on the parent's
    result-replay policy).  The active fault plan rides along for the
    same reason -- chaos must inject identically in every worker -- and
    ``events`` is the sentinel queue workers announce chunk pickups on.
    """
    from ..cache.results import configure_result_cache
    from ..cache.store import configure

    global _WORKER_EVENTS
    configure(cache_dir=cache_dir, enabled=cache_on)
    configure_result_cache(result_cache_on)
    faults.configure_faults(fault_plan)
    faults.mark_worker()
    _WORKER_EVENTS = events


def _shared_pool(processes: int) -> multiprocessing.pool.Pool:
    from ..cache.results import result_cache_enabled
    from ..cache.store import cache_enabled, resolved_cache_dir

    global _POOL, _POOL_PROCESSES, _POOL_CACHE_STATE, _POOL_EVENTS
    with _POOL_GUARD:
        cache_state = (resolved_cache_dir(), cache_enabled(),
                       result_cache_enabled(), faults.active_plan())
        if _POOL is not None and (_POOL_CACHE_STATE != cache_state
                                  or (_POOL_PROCESSES != processes
                                      and _POOL_USERS == 0)):
            # A stale cache state always rebuilds (the execution gate
            # serializes conflicting policy scopes, so the pool is idle
            # then).  A size mismatch alone only rebuilds an *idle*
            # pool: ``processes`` is just an upper bound
            # (min(jobs, len(chunks)) differs per run), and tearing the
            # pool down while a sibling is fanned out would kill its
            # chunks mid-sweep -- its respawn would then kill ours in
            # turn, ping-ponging until retry budgets burn out.
            shutdown_pool()
        if _POOL is None:
            _POOL_EVENTS = multiprocessing.SimpleQueue()
            _POOL = multiprocessing.Pool(
                processes=processes,
                initializer=_worker_init,
                initargs=cache_state + (_POOL_EVENTS,),
            )
            _POOL_PROCESSES = processes
            _POOL_CACHE_STATE = cache_state
        return _POOL


def shutdown_pool() -> None:
    """Tear down the shared worker pool (atexit, tests).

    ``terminate`` rather than ``close``: shutdown only happens between
    sweeps, so any still-queued chunks are leftovers of a sweep that
    raised -- draining them would block process exit for as long as the
    abandoned simulations take (the behaviour ``with Pool(...)`` used to
    provide via its ``__exit__``).
    """
    global _POOL, _POOL_PROCESSES, _POOL_CACHE_STATE, _POOL_EVENTS
    with _POOL_GUARD:
        if _POOL is not None:
            _POOL.terminate()
            _POOL.join()
            _POOL = None
            _POOL_PROCESSES = 0
            _POOL_CACHE_STATE = None
        if _POOL_EVENTS is not None:
            _POOL_EVENTS.close()
            _POOL_EVENTS = None


atexit.register(shutdown_pool)


def _task_benchmark(task: Union[SimTask, tuple]) -> str:
    if isinstance(task, (SimTask, SegmentTask)):
        return task.benchmark
    return task[1]


def _task_weight(task: Union[SimTask, tuple]) -> int:
    """Scheduling weight of one task: its instruction budget.

    Mixed-budget plans balance far better weighted by instructions than
    by task count (a 100k-instruction run is ~100x a 1k one); sampled
    tasks still carry the full budget -- their fixed profile/warm-up cost
    tracks the budget too, so the budget stays the best available proxy.
    Segment tasks carry the parent's per-segment estimate (timed
    instructions plus a discounted skip cost) instead.
    """
    if isinstance(task, SegmentTask):
        return max(1, int(task.weight or 1))
    if isinstance(task, SimTask):
        budget = task.max_instructions or task.config.max_instructions
    else:
        config, _benchmark, max_instructions = task
        budget = max_instructions or config.max_instructions
    return max(1, int(budget or 1))


def _store_hits() -> int:
    """Current artifact-store hit counter (0 when caching is disabled)."""
    from ..cache.store import active_store

    store = active_store()
    return store.stats.hits if store is not None else 0


def _result_hits() -> int:
    """Current full-run result-cache hit counter (see repro.cache.results)."""
    from ..cache.results import result_cache_hits

    return result_cache_hits()


def _timed_task(
    index: int, task: Union[SimTask, tuple]
) -> Tuple[int, SimulationResult, float, int, int]:
    """Run one task, measuring wall-clock seconds, store hits and
    full-run result replays (reported distinctly: a result replay skips
    the simulation entirely, an ordinary store hit only skips rebuilding
    one artifact)."""
    hits_before = _store_hits()
    result_hits_before = _result_hits()
    start = time.perf_counter()
    result = _run_task(task)
    return (index, result, time.perf_counter() - start,
            _store_hits() - hits_before,
            _result_hits() - result_hits_before)


def _run_supervised_chunk(payload) -> tuple:
    """Pool worker: run one dispatched chunk of (index, attempt, task)
    items and return per-task outcomes.

    All tasks of a chunk share one benchmark, so the worker builds (or
    loads from the artifact store) that benchmark's program, compiled
    trace, warm-up artifacts and sampling artifacts once and serves
    every configuration from them.  Per-task timing and store-hit deltas
    ride along so progress consumers (:class:`repro.api.RunHandle`) can
    stream them without a second channel.

    The worker announces the pickup on the sentinel queue *before* doing
    anything that can die (including the injected ``worker_kill`` site),
    so the supervisor can attribute a worker loss to exactly this chunk.
    A task that raises becomes an ``("err", ...)`` outcome rather than
    poisoning the chunk: its chunk-mates' finished work still returns.
    """
    chunk_id, items = payload
    if _WORKER_EVENTS is not None:
        _WORKER_EVENTS.put((chunk_id, os.getpid()))
    faults.maybe_kill_worker(items[0][0], items[0][1])
    outcomes = []
    for index, _attempt, task in items:
        try:
            outcomes.append(("ok", _timed_task(index, task)))
        except Exception as exc:
            outcomes.append(("err", index, f"{type(exc).__name__}: {exc}"))
    return chunk_id, outcomes


def _affine_chunks(
    tasks: Sequence[Union[SimTask, tuple]], jobs: int
) -> List[List[Tuple[int, Union[SimTask, tuple]]]]:
    """Workload-affine schedule: tasks grouped by benchmark, groups split
    only as far as keeping ``jobs`` workers busy requires.

    Each chunk is single-benchmark (the affinity that makes per-workload
    artifacts a per-worker one-time cost); when there are fewer
    benchmarks than workers the heaviest groups are split so parallelism
    never drops below ``jobs``.  Chunks are balanced by summed
    *instruction budget*, not task count, so plans mixing short and long
    runs split where the work actually is -- but never below
    ``_MIN_CHUNK_WEIGHT`` instructions per chunk: dispatching a chunk
    costs real wall-clock (pickling, queueing, result marshalling), so
    slicing a tiny plan into many sub-millisecond chunks buys overhead,
    not parallelism.  Deterministic for a given task list.
    """
    groups: Dict[str, List[int]] = {}
    total_weight = 0
    for index, task in enumerate(tasks):
        groups.setdefault(_task_benchmark(task), []).append(index)
        total_weight += _task_weight(task)
    # Per-chunk weight budget that still yields >= max(jobs, #groups)
    # chunks overall.
    target_chunks = max(jobs, len(groups))
    weight_cap = max(_MIN_CHUNK_WEIGHT, -(-total_weight // target_chunks))
    weighted_chunks: List[Tuple[int, List[Tuple[int, Union[SimTask, tuple]]]]] = []
    for indices in groups.values():
        current: List[Tuple[int, Union[SimTask, tuple]]] = []
        current_weight = 0
        for index in indices:
            weight = _task_weight(tasks[index])
            if current and current_weight + weight > weight_cap:
                weighted_chunks.append((current_weight, current))
                current, current_weight = [], 0
            current.append((index, tasks[index]))
            current_weight += weight
        if current:
            weighted_chunks.append((current_weight, current))
    # Heaviest chunks first so stragglers start early (load balance);
    # sort() is stable, so equal weights keep group order.
    weighted_chunks.sort(key=lambda entry: entry[0], reverse=True)
    return [chunk for _weight, chunk in weighted_chunks]


# ----------------------------------------------------------------------
# overhead-aware inline fallback for small parallel plans
# ----------------------------------------------------------------------
#: Never split a benchmark's tasks into chunks lighter than this many
#: instructions: below it, per-chunk dispatch overhead exceeds the work.
_MIN_CHUNK_WEIGHT = 2000

#: Measured per-chunk dispatch cost on a warm pool (pickle + queue +
#: result marshalling) and the one-time cost of spawning a cold pool.
_CHUNK_OVERHEAD_S = 0.004
_POOL_SPAWN_S = 0.35

#: EWMA of observed full-simulation throughput (instructions/second),
#: fed by real (non-replayed) task completions so the inline-vs-pool
#: estimate tracks the machine it is running on.
_DEFAULT_TASK_RATE = 80_000.0
_task_rate_ewma = _DEFAULT_TASK_RATE


def _observe_task_rate(weight: int, seconds: float,
                       result_cache_hits: int) -> None:
    """Fold one completed task into the throughput EWMA.

    Result-cache replays and sub-millisecond completions are skipped:
    they measure cache latency, not simulation throughput, and would
    inflate the estimate until the planner routed real work inline.
    """
    global _task_rate_ewma
    if result_cache_hits or seconds < 0.0005:
        return
    rate = min(1e9, max(1e3, weight / seconds))
    _task_rate_ewma += 0.2 * (rate - _task_rate_ewma)


def _effective_parallelism(jobs: int) -> int:
    """How many tasks can actually run at once: ``jobs`` capped by the
    CPUs this process may schedule on (affinity-aware -- in a one-core
    container ``jobs=2`` buys context switches, not concurrency)."""
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1
    return max(1, min(jobs, cores))


def _plan_prefers_inline(
    tasks: Sequence[Union[SimTask, tuple]], jobs: int
) -> bool:
    """Whether running this plan inline beats fanning it over the pool.

    The pool only pays off when the parallel saving (serial estimate
    from the throughput EWMA, scaled by the parallelism actually
    available) exceeds dispatch overhead plus -- when no pool exists
    yet -- the spawn cost.  Small sweeps at small budgets therefore run
    inline even with ``jobs>1``, which is also the only way ``jobs=2``
    can avoid losing to ``jobs=1`` on a single-CPU host.  Disabled by
    ``REPRO_NO_INLINE_FALLBACK=1`` (tests that assert pool behaviour)
    and whenever a fault plan is active: chaos must exercise the real
    supervised pool path it is designed to test.
    """
    if os.environ.get("REPRO_NO_INLINE_FALLBACK"):
        return False
    if faults.active_plan() is not faults.NO_FAULTS:
        return False
    effective = _effective_parallelism(jobs)
    if effective <= 1:
        return True
    total_weight = sum(_task_weight(task) for task in tasks)
    est_serial = total_weight / max(1.0, _task_rate_ewma)
    savings = est_serial * (1.0 - 1.0 / effective)
    overhead = len(_affine_chunks(tasks, jobs)) * _CHUNK_OVERHEAD_S
    if _POOL is None:
        overhead += _POOL_SPAWN_S
    return savings <= overhead


# ----------------------------------------------------------------------
# the supervised drive loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskCompletion:
    """One finished task as yielded by :func:`iter_task_results`.

    ``result`` is the :class:`SimulationResult`, or a typed
    :class:`~repro.simulator.plan.TaskFailure` when the task exhausted
    its retry budget or deadline.  ``attempts`` counts dispatches
    (1 = first try succeeded); ``cache_hits``/``result_cache_hits`` are
    the store-hit deltas attributable to this task.
    """

    index: int
    result: TaskOutcome
    seconds: float
    cache_hits: int
    result_cache_hits: int
    attempts: int = 1

    @property
    def failed(self) -> bool:
        return isinstance(self.result, TaskFailure)

    @property
    def retries(self) -> int:
        return self.attempts - 1


@dataclass
class SupervisorStats:
    """Process-wide counters kept by the supervised drive loop.

    Chaos tests and the CLI's retry report read these; they accumulate
    across runs until :func:`reset_supervisor_stats`.
    """

    retries: int = 0          #: task re-dispatches, any cause
    worker_losses: int = 0    #: chunks lost to a dead worker process
    timeouts: int = 0         #: per-task deadline overruns
    task_errors: int = 0      #: in-task exceptions caught by a worker
    pool_respawns: int = 0    #: full pool rebuilds after brokenness


SUPERVISOR_STATS = SupervisorStats()


def supervisor_stats() -> SupervisorStats:
    return SUPERVISOR_STATS


def reset_supervisor_stats() -> None:
    SUPERVISOR_STATS.__init__()


#: Default per-task retry budget (env: ``REPRO_MAX_RETRIES``).
DEFAULT_MAX_RETRIES = 2

#: How long the supervisor blocks for a completion before running its
#: housekeeping pass (deadlines, dead-worker scan, deferred retries).
SUPERVISION_TICK = 0.2

#: Exponential-backoff base/cap for task re-dispatch, in seconds.
RETRY_BACKOFF = 0.05
RETRY_BACKOFF_CAP = 2.0

#: Chunk ids must be unique across every run sharing the pool (stale
#: sentinel events from a previous sweep must never attribute to a new
#: chunk), so the counter is module-level.
_CHUNK_IDS = itertools.count()


def default_max_retries() -> int:
    """Per-task retry budget (env: ``REPRO_MAX_RETRIES``, default 2)."""
    try:
        return max(0, int(os.environ.get("REPRO_MAX_RETRIES",
                                         DEFAULT_MAX_RETRIES)))
    except ValueError:
        return DEFAULT_MAX_RETRIES


def _backoff(attempt: int) -> float:
    return min(RETRY_BACKOFF_CAP, RETRY_BACKOFF * (2 ** max(0, attempt - 1)))


def _task_key(task: Union[SimTask, tuple]) -> Tuple:
    return task.key if isinstance(task, SimTask) else ()


def _failure(index: int, task: Union[SimTask, tuple], kind: str,
             message: str, attempts: int) -> TaskCompletion:
    failure = TaskFailure(index=index, benchmark=_task_benchmark(task),
                          key=_task_key(task), kind=kind, message=message,
                          attempts=attempts)
    return TaskCompletion(index, failure, 0.0, 0, 0, attempts)


def _run_inline(tasks, cancel, max_retries) -> Iterator[TaskCompletion]:
    """The ``jobs=1`` executor: in task order, with the same retry budget
    as the pool path (an in-task exception is retried with backoff, then
    surfaces as a :class:`TaskFailure` rather than aborting the sweep)."""
    for index, task in enumerate(tasks):
        if cancel is not None and cancel.is_set():
            return
        attempt = 0
        while True:
            attempt += 1
            try:
                _index, result, seconds, hits, result_hits = \
                    _timed_task(index, task)
            except Exception as exc:
                SUPERVISOR_STATS.task_errors += 1
                if attempt > max_retries:
                    yield _failure(index, task, "error",
                                   f"{type(exc).__name__}: {exc}", attempt)
                    break
                SUPERVISOR_STATS.retries += 1
                time.sleep(_backoff(attempt))
                continue
            _observe_task_rate(_task_weight(task), seconds, result_hits)
            yield TaskCompletion(index, result, seconds, hits, result_hits,
                                 attempt)
            break


def _run_supervised(tasks, jobs, cancel, task_timeout,
                    max_retries) -> Iterator[TaskCompletion]:
    """The pool executor: dispatch workload-affine chunks, supervise the
    workers, survive their deaths.

    Chunks are submitted with ``apply_async`` and completions funnel into
    a local queue the supervisor *blocks* on (no polling); every
    ``SUPERVISION_TICK`` it additionally enforces deadlines, scans for
    vanished worker pids, and fires deferred (backed-off) re-dispatches.
    Worker-loss attribution comes from the sentinel pickup events: a
    chunk whose worker died is re-dispatched (its already-yielded tasks
    excluded) while ``multiprocessing.Pool`` replaces the worker.  With
    ``task_timeout`` chunks are singletons, so cancelling a stuck task
    is exactly one ``SIGKILL`` of its worker; a deadline overrun is
    terminal (a deterministic simulation that blew its deadline once
    will blow it again) and yields a ``TaskFailure(kind="timeout")``.
    """
    if task_timeout is not None:
        chunks = [[pair] for chunk in _affine_chunks(tasks, jobs)
                  for pair in chunk]
    else:
        chunks = _affine_chunks(tasks, jobs)
    global _POOL_USERS
    processes = min(jobs, len(chunks))
    with _POOL_GUARD:
        pool = _shared_pool(processes)
        _POOL_USERS += 1
    completions: queue.Queue = queue.Queue()
    attempts = {index: 0 for index in range(len(tasks))}
    inflight: Dict[int, dict] = {}   # chunk_id -> {items, pid, started}
    deferred: List[Tuple[float, list]] = []   # (eligible_at, items)
    done = set()
    known_pids: set = set()
    expected_deaths: set = set()     # pids we SIGKILLed on a deadline

    def dispatch(items) -> None:
        nonlocal pool
        chunk_id = next(_CHUNK_IDS)
        payload = []
        for index, task in items:
            attempts[index] += 1
            payload.append((index, attempts[index], task))

        def on_done(result):
            completions.put(("done", result))

        def on_error(exc, cid=chunk_id):
            completions.put(("chunk-error", cid, exc))

        for resubmission in (False, True):
            try:
                pool.apply_async(_run_supervised_chunk,
                                 ((chunk_id, payload),),
                                 callback=on_done, error_callback=on_error)
                break
            except Exception:
                # The pool died under us (terminated/broken): rebuild it,
                # requeue its in-flight chunks, resubmit this one once.
                if resubmission:
                    raise
                respawn_pool()
        entry = {"items": list(items), "pid": None, "started": None}
        inflight[chunk_id] = entry
        with _PICKUP_LOCK:
            _PICKUP_ENTRIES[chunk_id] = entry

    def resolve_chunk(chunk_id: int, kind: str, message: str,
                      retry: bool = True) -> None:
        """Retire a lost/expired chunk: unfinished tasks go back to the
        deferred queue if budget (and ``retry``) allow, else fail."""
        entry = inflight.pop(chunk_id, None)
        with _PICKUP_LOCK:
            _PICKUP_ENTRIES.pop(chunk_id, None)
        if entry is None:
            return
        retry_items = []
        for index, task in entry["items"]:
            if index in done:
                continue
            if retry and attempts[index] <= max_retries:
                retry_items.append((index, task))
            else:
                completions.put(("failed", index, kind, message))
        if retry_items:
            SUPERVISOR_STATS.retries += len(retry_items)
            delay = _backoff(max(attempts[index] for index, _ in retry_items))
            deferred.append((time.monotonic() + delay, retry_items))

    def respawn_pool() -> None:
        nonlocal pool
        SUPERVISOR_STATS.pool_respawns += 1
        shutdown_pool()
        pool = _shared_pool(processes)
        known_pids.clear()
        for chunk_id in list(inflight):
            SUPERVISOR_STATS.worker_losses += 1
            resolve_chunk(chunk_id, "worker-lost", "worker pool respawned")

    def drain_pickup_events() -> None:
        events = _POOL_EVENTS
        if events is None:
            return
        try:
            # The lock makes the empty()/get() pair atomic across
            # concurrent supervisors: SimpleQueue.get() has no timeout,
            # so two drainers both observing a single queued event
            # would leave the loser blocked forever once the winner
            # consumes it (and with it that run's completion handling
            # and deadline enforcement).
            with _PICKUP_LOCK:
                while not events.empty():
                    chunk_id, pid = events.get()
                    # Route through the shared registry: this
                    # supervisor may drain a pickup that belongs to a
                    # concurrent sibling's chunk, and the attribution
                    # must land on *their* entry.
                    entry = _PICKUP_ENTRIES.get(chunk_id)
                    if entry is not None:
                        entry["pid"] = pid
                        entry["started"] = time.monotonic()
        except (EOFError, OSError):
            # A sibling tore the pool (and its queue) down mid-drain.
            return

    def enforce_deadlines() -> None:
        if task_timeout is None:
            return
        now = time.monotonic()
        for chunk_id in list(inflight):
            entry = inflight[chunk_id]
            if entry["started"] is None \
                    or now - entry["started"] <= task_timeout:
                continue
            SUPERVISOR_STATS.timeouts += 1
            pid = entry["pid"]
            if pid is not None:
                expected_deaths.add(pid)
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
            resolve_chunk(
                chunk_id, "timeout",
                f"exceeded task deadline of {task_timeout}s", retry=False)

    def scan_for_dead_workers() -> None:
        workers = getattr(pool, "_pool", None)
        if workers is None:
            return
        current = {worker.pid for worker in workers
                   if worker.pid is not None}
        vanished = (known_pids - current) - expected_deaths
        expected_deaths.intersection_update(known_pids - current)
        known_pids.clear()
        known_pids.update(current)
        # An attributed pid that is no longer a live pool worker is a
        # loss even if the pid-set diff missed it: a worker can pick up
        # a chunk, die, and be replaced between two scans (the pool
        # respawns workers on its own), so the dead pid may never have
        # been observed in ``known_pids`` at all.
        lost = [chunk_id for chunk_id, entry in inflight.items()
                if entry["pid"] is not None
                and entry["pid"] not in current
                and entry["pid"] not in expected_deaths]
        if not lost:
            if not vanished:
                return
            # A worker died before its pickup event could attribute a
            # chunk to it (or while idle): conservatively requeue every
            # unattributed chunk -- duplicate completions dedupe on the
            # ``done`` set, a hang would not.
            lost = [chunk_id for chunk_id, entry in inflight.items()
                    if entry["pid"] is None]
        for chunk_id in lost:
            SUPERVISOR_STATS.worker_losses += 1
            resolve_chunk(chunk_id, "worker-lost",
                          "worker process died mid-chunk")

    try:
        yield from _supervise(tasks, chunks, cancel, task_timeout,
                              max_retries, dispatch, resolve_chunk,
                              drain_pickup_events, enforce_deadlines,
                              scan_for_dead_workers, completions,
                              inflight, deferred, done, attempts)
    finally:
        with _POOL_GUARD:
            _POOL_USERS -= 1
        with _PICKUP_LOCK:
            for chunk_id in list(inflight):
                _PICKUP_ENTRIES.pop(chunk_id, None)


def _supervise(tasks, chunks, cancel, task_timeout, max_retries,
               dispatch, resolve_chunk, drain_pickup_events,
               enforce_deadlines, scan_for_dead_workers, completions,
               inflight, deferred, done, attempts) -> Iterator[TaskCompletion]:
    """The supervision loop of :func:`_run_supervised` (split out so the
    caller can bracket it with pool-user bookkeeping in a ``finally``)."""
    for chunk in chunks:
        dispatch(chunk)
    while len(done) < len(tasks):
        if cancel is not None and cancel.is_set():
            with _POOL_GUARD:
                if _POOL_USERS == 1:
                    # Sole user: kill outstanding chunks with the pool.
                    # With concurrent same-policy supervisors the pool
                    # stays up for the others; this run's chunks finish
                    # as no-ops (completions are simply not consumed).
                    shutdown_pool()
            return
        now = time.monotonic()
        ready = [items for eligible_at, items in deferred
                 if eligible_at <= now]
        deferred[:] = [(eligible_at, items) for eligible_at, items
                       in deferred if eligible_at > now]
        for items in ready:
            dispatch(items)
        drain_pickup_events()
        enforce_deadlines()
        scan_for_dead_workers()
        tick = SUPERVISION_TICK
        if deferred:
            tick = min(tick, max(0.01, min(
                eligible_at for eligible_at, _ in deferred) - now))
        try:
            message = completions.get(timeout=tick)
        except queue.Empty:
            continue
        while message is not None:
            if message[0] == "done":
                chunk_id, outcomes = message[1]
                inflight.pop(chunk_id, None)
                with _PICKUP_LOCK:
                    _PICKUP_ENTRIES.pop(chunk_id, None)
                for outcome in outcomes:
                    if outcome[0] == "ok":
                        index, result, seconds, hits, result_hits = \
                            outcome[1]
                        if index in done:
                            continue
                        done.add(index)
                        _observe_task_rate(_task_weight(tasks[index]),
                                           seconds, result_hits)
                        yield TaskCompletion(index, result, seconds, hits,
                                             result_hits, attempts[index])
                    else:
                        _tag, index, error = outcome
                        if index in done:
                            continue
                        SUPERVISOR_STATS.task_errors += 1
                        if attempts[index] <= max_retries:
                            SUPERVISOR_STATS.retries += 1
                            deferred.append((
                                time.monotonic() + _backoff(attempts[index]),
                                [(index, tasks[index])]))
                        else:
                            done.add(index)
                            yield _failure(index, tasks[index], "error",
                                           error, attempts[index])
            elif message[0] == "chunk-error":
                _tag, chunk_id, exc = message
                SUPERVISOR_STATS.worker_losses += 1
                resolve_chunk(chunk_id, "worker-lost",
                              f"{type(exc).__name__}: {exc}")
            elif message[0] == "failed":
                _tag, index, kind, error = message
                if index not in done:
                    done.add(index)
                    yield _failure(index, tasks[index], kind, error,
                                   attempts[index])
            try:
                message = completions.get_nowait()
            except queue.Empty:
                message = None


def iter_task_results(
    tasks: Sequence[Union[SimTask, tuple]],
    jobs: int = 1,
    cancel=None,
    task_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
) -> Iterator[TaskCompletion]:
    """Yield a :class:`TaskCompletion` per task as tasks finish.

    The incremental counterpart of :func:`run_tasks` and the channel
    :class:`repro.api.RunHandle` streams progress from.  ``jobs=1`` runs
    inline in task order; ``jobs>1`` fans workload-affine chunks over the
    shared pool under the supervisor (see :func:`_run_supervised`) and
    yields completions unordered (consumers reassemble by index) --
    unless the plan is small enough that pool dispatch overhead would
    exceed the parallel saving (see :func:`_plan_prefers_inline`), in
    which case it runs inline with identical results.

    ``max_retries`` bounds re-dispatches per task (default: env
    ``REPRO_MAX_RETRIES`` or 2); a task that exhausts it completes with
    a :class:`~repro.simulator.plan.TaskFailure` result instead of
    raising, so the rest of the sweep still finishes.  ``task_timeout``
    (seconds) adds a per-task deadline; deadlines need a killable
    process, so a timeout forces the pool path even for ``jobs=1``.
    ``cancel`` is an optional ``threading.Event``: once set, no further
    task is started -- inline runs stop between tasks, pool runs stop at
    the next supervision tick and tear the pool down so outstanding
    chunks die with it.
    """
    jobs = resolve_jobs(jobs)
    if max_retries is None:
        max_retries = default_max_retries()
    if task_timeout is None and (jobs == 1 or len(tasks) <= 1
                                 or _plan_prefers_inline(tasks, jobs)):
        yield from _run_inline(tasks, cancel, max_retries)
        return
    if not tasks:
        return
    yield from _run_supervised(tasks, max(jobs, 1), cancel, task_timeout,
                               max_retries)


def run_tasks(
    tasks: Sequence[Union[SimTask, tuple]],
    jobs: int = 1,
    task_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
) -> List[SimulationResult]:
    """Run :class:`SimTask` entries (or legacy ``(config, benchmark,
    max_instructions)`` tuples), optionally on the shared process pool.
    Results keep task order regardless of ``jobs``.

    This is the strict surface: tasks that still failed after the retry
    budget raise :class:`~repro.simulator.plan.TaskFailureError` (the
    partial-result surface is :class:`repro.api.Session`, which reports
    failures in ``RunResult.failed_tasks`` instead).
    """
    results: List[Optional[TaskOutcome]] = [None] * len(tasks)
    failures: List[TaskFailure] = []
    for completion in iter_task_results(tasks, jobs=jobs,
                                        task_timeout=task_timeout,
                                        max_retries=max_retries):
        results[completion.index] = completion.result
        if completion.failed:
            failures.append(completion.result)
    if failures:
        raise TaskFailureError(failures)
    return results

