"""Declarative experiment plans: typed simulation tasks, one executor.

Every paper experiment is some grid of (configuration x benchmark), run
either in full or sampled, and then regrouped into a figure-shaped
mapping.  Instead of each figure builder hand-rolling its own nested
loops (which kept ``jobs=N`` from working anywhere but ``repro-clgp
run``), builders append typed :class:`SimTask` entries to an
:class:`ExperimentPlan` and call :meth:`ExperimentPlan.run`; the plan
hands the flat task list to the one executor in
:mod:`repro.simulator.runner`, which runs it inline or over the shared
multiprocessing pool.  Results come back in task order regardless of
``jobs`` and are regrouped by each task's ``key``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import SimulationConfig
from .stats import SimulationResult, harmonic_mean_ipc


@dataclass(frozen=True)
class SimTask:
    """One simulation to run: a configuration on a benchmark.

    ``key`` is an arbitrary grouping key chosen by the plan builder (for
    example ``(scheme, l1_size)``); :meth:`PlanResults.by_key` groups the
    executed results by it in insertion order.  ``sampled`` selects
    SimPoint-style sampled simulation (see :mod:`repro.sampling`), with
    ``sampling`` optionally overriding the default
    :class:`~repro.sampling.sampled.SamplingSpec`.
    """

    config: SimulationConfig
    benchmark: str
    max_instructions: Optional[int] = None
    sampled: bool = False
    sampling: Optional[object] = None
    key: Tuple = ()


@dataclass
class PlanResults:
    """Executed plan: tasks and their results, aligned and in task order."""

    tasks: List[SimTask]
    results: List[SimulationResult]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def by_key(self) -> Dict[Tuple, List[SimulationResult]]:
        """Results grouped by task key, keys in first-insertion order."""
        grouped: Dict[Tuple, List[SimulationResult]] = {}
        for task, result in zip(self.tasks, self.results):
            grouped.setdefault(task.key, []).append(result)
        return grouped

    def hmean_by_key(self) -> Dict[Tuple, float]:
        """Harmonic-mean IPC per task key (the paper's HMEAN bars)."""
        return {
            key: harmonic_mean_ipc(results)
            for key, results in self.by_key().items()
        }


@dataclass
class ExperimentPlan:
    """A flat, ordered list of :class:`SimTask` plus the run entry point."""

    name: str = ""
    tasks: List[SimTask] = field(default_factory=list)

    def add(
        self,
        config: SimulationConfig,
        benchmark: str,
        max_instructions: Optional[int] = None,
        key: Tuple = (),
        sampled: bool = False,
        sampling: Optional[object] = None,
    ) -> SimTask:
        """Append one task and return it."""
        task = SimTask(
            config=config,
            benchmark=benchmark,
            max_instructions=max_instructions,
            sampled=sampled,
            sampling=sampling,
            key=key,
        )
        self.tasks.append(task)
        return task

    def add_grid(
        self,
        configs_by_key: Dict[Tuple, SimulationConfig],
        benchmarks,
        max_instructions: Optional[int] = None,
        sampled: bool = False,
        sampling: Optional[object] = None,
    ) -> None:
        """Append the cross product of ``{key: config}`` x ``benchmarks``."""
        for key, config in configs_by_key.items():
            for benchmark in benchmarks:
                self.add(
                    config, benchmark, max_instructions,
                    key=key, sampled=sampled, sampling=sampling,
                )

    def __len__(self) -> int:
        return len(self.tasks)

    def run(self, jobs: int = 1) -> PlanResults:
        """Execute every task (inline, or fanned out when ``jobs != 1``).

        Result order always matches task order.
        """
        from .runner import run_tasks   # runner imports this module

        return PlanResults(
            tasks=list(self.tasks),
            results=run_tasks(self.tasks, jobs=jobs),
        )
