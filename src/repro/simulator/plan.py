"""Declarative experiment plans: typed simulation tasks, one executor.

Every paper experiment is some grid of (configuration x benchmark), run
either in full or sampled, and then regrouped into a figure-shaped
mapping.  Instead of each figure builder hand-rolling its own nested
loops (which kept ``jobs=N`` from working anywhere but ``repro-clgp
run``), builders append typed :class:`SimTask` entries to an
:class:`ExperimentPlan` and call :meth:`ExperimentPlan.run`; the plan
hands the flat task list to the one executor in
:mod:`repro.simulator.runner`, which runs it inline or over the shared
multiprocessing pool.  Results come back in task order regardless of
``jobs`` and are regrouped by each task's ``key``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .config import SimulationConfig
from .stats import SimulationResult, harmonic_mean_ipc


@dataclass(frozen=True)
class SimTask:
    """One simulation to run: a configuration on a benchmark.

    ``key`` is an arbitrary grouping key chosen by the plan builder (for
    example ``(scheme, l1_size)``); :meth:`PlanResults.by_key` groups the
    executed results by it in insertion order.  ``sampled`` selects
    SimPoint-style sampled simulation (see :mod:`repro.sampling`), with
    ``sampling`` optionally overriding the default
    :class:`~repro.sampling.sampled.SamplingSpec`.
    """

    config: SimulationConfig
    benchmark: str
    max_instructions: Optional[int] = None
    sampled: bool = False
    sampling: Optional[object] = None
    key: Tuple = ()
    #: Worker processes for *intra-run* interval parallelism of a sampled
    #: task (``None``/1 = measure intervals serially in this process).
    #: Only meaningful with ``sampled=True``; see
    #: :func:`repro.sampling.sampled._measure_intervals_parallel`.
    interval_jobs: Optional[int] = None


@dataclass(frozen=True)
class SegmentTask:
    """One contiguous stretch of a sampled run's selected intervals.

    The intra-run parallel path of a sampled simulation partitions the
    interval selection into maximal contiguous segments (adjacent
    intervals share one timed stretch; a jumped interval restores a
    checkpoint and functionally skips) and schedules each segment as one
    of these through the same supervised executor that runs
    :class:`SimTask` entries.  ``profile`` is the workload's
    :class:`~repro.workloads.generator.WorkloadProfile` (small and
    picklable; the worker rebuilds -- or fetches from its per-process
    cache -- the deterministic workload from it), ``indices`` are the
    positions of this segment's intervals within the run's
    :class:`~repro.sampling.simpoint.IntervalSelection` (recomputed
    deterministically worker-side), and ``weight`` is the parent's
    scheduling-weight estimate (timed instructions plus a discounted
    functional-skip cost) used by the workload-affine chunker.
    """

    config: SimulationConfig
    profile: object
    total_instructions: int
    indices: Tuple[int, ...]
    sampling: Optional[object] = None
    weight: int = 0

    @property
    def benchmark(self) -> str:
        return self.profile.name


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure of one task, surfaced in place of its result.

    Produced by the supervised executor when a task exhausts its retry
    budget: ``kind`` says how it died (``"timeout"`` for a deadline
    overrun, ``"worker-lost"`` when the worker process kept dying,
    ``"error"`` for a repeated in-task exception).  Failures occupy the
    task's slot in ``PlanResults.results`` so the run stays aligned and
    partial -- :meth:`PlanResults.by_key` and the IPC aggregations skip
    them; :meth:`PlanResults.require_success` raises if any exist.
    """

    index: int
    benchmark: str
    key: Tuple = ()
    kind: str = "error"     # "timeout" | "worker-lost" | "error"
    message: str = ""
    attempts: int = 1

    def __str__(self) -> str:
        detail = f": {self.message}" if self.message else ""
        return (f"task {self.index} ({self.benchmark}) {self.kind} "
                f"after {self.attempts} attempt(s){detail}")


class TaskFailureError(RuntimeError):
    """Raised by strict surfaces (``run_tasks``, figure builders) when a
    plan finished with failed tasks; carries the typed failures."""

    def __init__(self, failures: List[TaskFailure]):
        self.failures = list(failures)
        lines = "; ".join(str(f) for f in self.failures)
        super().__init__(
            f"{len(self.failures)} task(s) failed after retries: {lines}")


#: What a task slot holds once executed.
TaskOutcome = Union[SimulationResult, TaskFailure]


@dataclass
class PlanResults:
    """Executed plan: tasks and their outcomes, aligned and in task order.

    Outcomes are :class:`SimulationResult`, or :class:`TaskFailure` for
    tasks the supervised executor gave up on (a *partial* result).  The
    grouping/aggregation helpers skip failures so figures degrade to the
    tasks that did finish; callers that need completeness use
    :meth:`require_success` or inspect :attr:`failures`.
    """

    tasks: List[SimTask]
    results: List[TaskOutcome]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def failures(self) -> List[TaskFailure]:
        return [r for r in self.results if isinstance(r, TaskFailure)]

    @property
    def successes(self) -> List[SimulationResult]:
        return [r for r in self.results if not isinstance(r, TaskFailure)]

    def require_success(self) -> "PlanResults":
        """Return self, raising :class:`TaskFailureError` on any failure."""
        failures = self.failures
        if failures:
            raise TaskFailureError(failures)
        return self

    def by_key(self) -> Dict[Tuple, List[SimulationResult]]:
        """Successful results grouped by task key, keys in first-insertion
        order (failed tasks are skipped; their key still appears if any
        sibling succeeded)."""
        grouped: Dict[Tuple, List[SimulationResult]] = {}
        for task, result in zip(self.tasks, self.results):
            if isinstance(result, TaskFailure):
                continue
            grouped.setdefault(task.key, []).append(result)
        return grouped

    def hmean_by_key(self) -> Dict[Tuple, float]:
        """Harmonic-mean IPC per task key (the paper's HMEAN bars)."""
        return {
            key: harmonic_mean_ipc(results)
            for key, results in self.by_key().items()
        }


@dataclass
class ExperimentPlan:
    """A flat, ordered list of :class:`SimTask` plus the run entry point."""

    name: str = ""
    tasks: List[SimTask] = field(default_factory=list)

    def add(
        self,
        config: SimulationConfig,
        benchmark: str,
        max_instructions: Optional[int] = None,
        key: Tuple = (),
        sampled: bool = False,
        sampling: Optional[object] = None,
        interval_jobs: Optional[int] = None,
    ) -> SimTask:
        """Append one task and return it."""
        task = SimTask(
            config=config,
            benchmark=benchmark,
            max_instructions=max_instructions,
            sampled=sampled,
            sampling=sampling,
            key=key,
            interval_jobs=interval_jobs,
        )
        self.tasks.append(task)
        return task

    def add_grid(
        self,
        configs_by_key: Dict[Tuple, SimulationConfig],
        benchmarks,
        max_instructions: Optional[int] = None,
        sampled: bool = False,
        sampling: Optional[object] = None,
    ) -> None:
        """Append the cross product of ``{key: config}`` x ``benchmarks``."""
        for key, config in configs_by_key.items():
            for benchmark in benchmarks:
                self.add(
                    config, benchmark, max_instructions,
                    key=key, sampled=sampled, sampling=sampling,
                )

    def __len__(self) -> int:
        return len(self.tasks)

    def run(self, jobs: int = 1) -> PlanResults:
        """Execute every task (inline, or fanned out when ``jobs != 1``).

        Result order always matches task order.
        """
        from .runner import run_tasks   # runner imports this module

        return PlanResults(
            tasks=list(self.tasks),
            results=run_tasks(self.tasks, jobs=jobs),
        )
