"""Cache port / access-timing models.

Two access disciplines appear in the paper:

* **Blocking (non-pipelined)** -- the structure is busy for its full access
  latency; a new access cannot start until the previous one finishes.  This
  is the "base" L1 configuration of Figure 1.
* **Pipelined** -- a new access can start every cycle, but each access still
  takes the full latency to return ("base pipelined", pipelined pre-buffers
  with 16 entries).  Pipelining "does not reduce hit time or miss rate, but
  increases the throughput of cache responses".

Both are modelled by :class:`AccessPort`, which tracks when the next access
may start and when issued accesses complete.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class PortStats:
    accesses: int = 0
    stall_cycles: int = 0  #: cycles requests had to wait for the port


class AccessPort:
    """Timing model for one access port of a cache-like structure.

    Parameters
    ----------
    latency:
        Access latency in cycles (>= 1).
    pipelined:
        If True, a new access may start every cycle (initiation interval 1);
        otherwise the port blocks for ``latency`` cycles per access.
    ports:
        Number of identical ports (accesses that can *start* in the same
        cycle).  The paper's I-caches have 1 port.
    """

    def __init__(self, latency: int, pipelined: bool = False, ports: int = 1) -> None:
        if latency < 1:
            raise ValueError("latency must be >= 1")
        if ports < 1:
            raise ValueError("ports must be >= 1")
        self.latency = latency
        self.pipelined = pipelined
        self.ports = ports
        self._next_start = 0          # earliest cycle a new access may start
        self._starts_this_cycle = 0   # accesses started in _current_cycle
        self._current_cycle = -1
        self.stats = PortStats()

    # ------------------------------------------------------------------
    def earliest_start(self, cycle: int) -> int:
        """Earliest cycle (>= ``cycle``) at which a new access could start."""
        start = max(cycle, self._next_start)
        if (
            start == self._current_cycle
            and self._starts_this_cycle >= self.ports
        ):
            start += 1
        return start

    def issue(self, cycle: int) -> int:
        """Start an access at the earliest opportunity at/after ``cycle``.

        Returns the cycle at which the access completes (data available).
        """
        start = self.earliest_start(cycle)
        if start != self._current_cycle:
            self._current_cycle = start
            self._starts_this_cycle = 0
        self._starts_this_cycle += 1
        self.stats.accesses += 1
        self.stats.stall_cycles += start - cycle
        if self.pipelined:
            # Initiation interval of one cycle.
            self._next_start = max(self._next_start, start)
        else:
            # Structure blocked until this access completes.
            self._next_start = start + self.latency
        return start + self.latency

    def completion_if_issued(self, cycle: int) -> int:
        """Completion cycle an access would have if issued now (no side
        effects); used for the parallel-probe 'which source is fastest'
        decision at the fetch stage."""
        return self.earliest_start(cycle) + self.latency

    def is_free(self, cycle: int) -> bool:
        """Whether an access could start exactly at ``cycle``."""
        return self.earliest_start(cycle) == cycle

    def reset(self) -> None:
        self._next_start = 0
        self._starts_this_cycle = 0
        self._current_cycle = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "pipelined" if self.pipelined else "blocking"
        return f"AccessPort(latency={self.latency}, {mode}, ports={self.ports})"
