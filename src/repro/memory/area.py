"""Area and access-energy estimates for the fast fetch structures.

The paper repeatedly argues that the *obvious* fix for slow instruction
caches -- pipelining a large L1 -- "involves extra energy (extra latches,
multiplexers, clock and decoders) and area overhead (extra precharge
circuitry, latches, decoders, sense amplifiers, and multiplexer)", whereas
CLGP reaches the same performance with a tiny conventional cache plus small
buffers.  The paper quantifies this only through the *capacity* budget
(Section 5.1); this module adds a simple analytical area/energy model so
the budget argument can also be made in mm^2 and nJ.

The model is deliberately lightweight (this is an extension, not part of
the paper's evaluation):

* SRAM area = bits * bit-cell area at the technology node, times an
  overhead factor for decoders/sense-amps/tags that grows with
  associativity and shrinks with capacity (peripheral overhead amortises),
* fully-associative structures (pre-buffers, L0) pay a per-entry CAM tag
  overhead,
* pipelining a structure multiplies its area and per-access energy by a
  constant overhead factor (latches, extra decoders), following the
  qualitative statement in the paper and the Agarwal et al. DATE'03 data it
  cites,
* per-access energy scales with the square root of the capacity (bitline /
  wordline lengths) at a per-node reference point.

All constants are documented and configurable; absolute values are rough,
but ratios between configurations are meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..technology import TechnologyNode, resolve_technology

#: SRAM bit-cell area in um^2 at each feature size (roughly 100-150 F^2).
_BITCELL_UM2 = {
    0.18: 4.5,
    0.13: 2.4,
    0.09: 1.1,
    0.065: 0.55,
    0.045: 0.27,
}

#: Reference dynamic energy (nJ) of one access to a 4 KB, 2-way SRAM at
#: each node; other sizes scale with sqrt(capacity).
_REFERENCE_ACCESS_NJ = {
    0.18: 0.60,
    0.13: 0.38,
    0.09: 0.22,
    0.065: 0.13,
    0.045: 0.075,
}

#: Area / energy multiplier for a pipelined structure (extra latches,
#: precharge, decoders; Agarwal et al. report 10-30% depending on depth).
PIPELINING_AREA_OVERHEAD = 1.25
PIPELINING_ENERGY_OVERHEAD = 1.15

#: Extra area per fully-associative (CAM-tagged) entry, expressed as a
#: fraction of that entry's data area.
CAM_TAG_OVERHEAD = 0.30


def _node_constant(table, node: TechnologyNode) -> float:
    feature = node.feature_size_um
    if feature in table:
        return table[feature]
    # Scale quadratically (area) / linearly (energy-ish) from the nearest
    # published node; adequate for an extension model.
    nearest = min(table, key=lambda f: abs(f - feature))
    return table[nearest] * (feature / nearest) ** 2


@dataclass(frozen=True)
class StructureEstimate:
    """Area and access energy of one SRAM-like structure."""

    name: str
    size_bytes: int
    area_mm2: float
    access_energy_nj: float

    def scaled(self, factor: float) -> "StructureEstimate":
        return StructureEstimate(
            name=self.name, size_bytes=self.size_bytes,
            area_mm2=self.area_mm2 * factor,
            access_energy_nj=self.access_energy_nj * factor,
        )


def estimate_structure(
    name: str,
    size_bytes: int,
    technology,
    associativity: Optional[int] = 2,
    line_size: int = 64,
    fully_associative: bool = False,
    pipelined: bool = False,
) -> StructureEstimate:
    """Estimate the area (mm^2) and per-access energy (nJ) of a structure."""
    if size_bytes <= 0:
        raise ValueError("structure size must be positive")
    node = resolve_technology(technology)
    bits = size_bytes * 8

    # Tag bits: ~20 tag bits per line plus valid/LRU state.
    lines = max(1, size_bytes // line_size)
    tag_bits = lines * 24
    total_bits = bits + tag_bits

    bitcell_um2 = _node_constant(_BITCELL_UM2, node)
    data_area_um2 = total_bits * bitcell_um2

    # Peripheral overhead: large for tiny arrays, amortised for big ones.
    periphery = 1.0 + 1.8 / math.log2(max(4, size_bytes / 64))
    ways = lines if fully_associative else max(1, associativity or 1)
    periphery *= 1.0 + 0.04 * (ways - 1)
    if fully_associative:
        periphery *= 1.0 + CAM_TAG_OVERHEAD

    area_mm2 = data_area_um2 * periphery / 1e6

    reference = _node_constant(_REFERENCE_ACCESS_NJ, node)
    energy_nj = reference * math.sqrt(size_bytes / 4096.0)
    if fully_associative:
        energy_nj *= 1.0 + CAM_TAG_OVERHEAD

    estimate = StructureEstimate(
        name=name, size_bytes=size_bytes,
        area_mm2=area_mm2, access_energy_nj=energy_nj,
    )
    if pipelined:
        estimate = StructureEstimate(
            name=name, size_bytes=size_bytes,
            area_mm2=area_mm2 * PIPELINING_AREA_OVERHEAD,
            access_energy_nj=energy_nj * PIPELINING_ENERGY_OVERHEAD,
        )
    return estimate


@dataclass(frozen=True)
class FrontEndBudget:
    """Aggregate fast-storage budget of one configuration."""

    label: str
    capacity_bytes: int
    area_mm2: float
    #: Weighted per-fetch energy assuming the given fetch-source mix.
    energy_per_line_fetch_nj: float


def front_end_budget(config, fetch_source_fractions=None,
                     label: Optional[str] = None) -> FrontEndBudget:
    """Area/energy budget of the fast fetch structures of a configuration.

    ``config`` is a :class:`repro.simulator.config.SimulationConfig`.  The
    optional ``fetch_source_fractions`` (e.g. from a
    :class:`~repro.simulator.stats.SimulationResult`) weight the per-access
    energies into an average energy per fetched line; without it, the L1
    energy is used as the weight for cache fetches.
    """
    technology = config.technology_node
    structures = []

    structures.append(estimate_structure(
        "il1", config.l1_size_bytes, technology,
        associativity=config.l1_associativity, line_size=config.line_size,
        pipelined=config.l1_pipelined,
    ))
    l0_size = config.resolved_l0_size()
    if l0_size:
        structures.append(estimate_structure(
            "il0", l0_size, technology, fully_associative=True,
            line_size=config.line_size,
        ))
    if config.engine in ("fdp", "clgp", "next-line", "target-line"):
        pb_bytes = config.resolved_prebuffer_entries() * config.line_size
        structures.append(estimate_structure(
            "PB", pb_bytes, technology, fully_associative=True,
            line_size=config.line_size, pipelined=config.prebuffer_pipelined,
        ))

    total_area = sum(s.area_mm2 for s in structures)
    capacity = sum(s.size_bytes for s in structures)

    by_name = {s.name: s for s in structures}
    if fetch_source_fractions:
        energy = 0.0
        for source, fraction in fetch_source_fractions.items():
            if source in by_name:
                energy += fraction * by_name[source].access_energy_nj
            elif source in ("ul2", "Mem"):
                # Escalations cost roughly an order of magnitude more.
                energy += fraction * 10.0 * by_name["il1"].access_energy_nj
    else:
        energy = by_name["il1"].access_energy_nj

    return FrontEndBudget(
        label=label or config.derived_label(),
        capacity_bytes=capacity,
        area_mm2=total_area,
        energy_per_line_fetch_nj=energy,
    )
