"""Shared bus to the unified L2 cache, with arbitration.

The paper models "a bus to the L2 cache that can only serve one request per
cycle", with the priority order

1. L1 data-cache demand requests,
2. L1 instruction-cache demand requests,
3. prefetch requests (served only when nothing else wants the bus).

Requests are queued by the producers during a cycle and the simulator calls
:meth:`L2Bus.tick` once per cycle; the single granted request's callback is
invoked with the grant cycle so the producer can compute when its data
arrives.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, List, Optional


class BusPriority(IntEnum):
    """Arbitration classes, lower value = higher priority."""

    DATA_DEMAND = 0
    INSTRUCTION_DEMAND = 1
    PREFETCH = 2


@dataclass
class BusStats:
    """Counters for bus behaviour, split by requester class."""

    requests: List[int] = field(default_factory=lambda: [0, 0, 0])
    grants: List[int] = field(default_factory=lambda: [0, 0, 0])
    total_wait_cycles: List[int] = field(default_factory=lambda: [0, 0, 0])
    busy_cycles: int = 0

    def record_request(self, priority: BusPriority) -> None:
        self.requests[priority] += 1

    def record_grant(self, priority: BusPriority, waited: int) -> None:
        self.grants[priority] += 1
        self.total_wait_cycles[priority] += waited
        self.busy_cycles += 1

    def average_wait(self, priority: BusPriority) -> float:
        g = self.grants[priority]
        return self.total_wait_cycles[priority] / g if g else 0.0


@dataclass(order=True, slots=True)
class _QueuedRequest:
    sort_key: tuple
    priority: BusPriority = field(compare=False)
    submit_cycle: int = field(compare=False)
    on_grant: Callable[[int], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    tag: Optional[object] = field(default=None, compare=False)


class L2Bus:
    """Single-request-per-cycle bus with strict priority arbitration.

    ``grants_per_cycle`` defaults to 1 (paper Table 2: 64 B/cycle with
    64-byte lines, i.e. one line transfer per cycle).
    """

    def __init__(self, grants_per_cycle: int = 1) -> None:
        if grants_per_cycle < 1:
            raise ValueError("grants_per_cycle must be >= 1")
        self.grants_per_cycle = grants_per_cycle
        self._queue: List[_QueuedRequest] = []
        self._counter = itertools.count()
        self._live = 0   # non-cancelled queued requests (O(1) idle check)
        self.stats = BusStats()

    # ------------------------------------------------------------------
    def submit(
        self,
        priority: BusPriority,
        cycle: int,
        on_grant: Callable[[int], None],
        tag: Optional[object] = None,
    ) -> _QueuedRequest:
        """Queue a request.  ``on_grant(grant_cycle)`` is called when the bus
        serves it (possibly in the same cycle if nothing of higher priority
        is waiting)."""
        request = _QueuedRequest(
            sort_key=(int(priority), next(self._counter)),
            priority=priority,
            submit_cycle=cycle,
            on_grant=on_grant,
            tag=tag,
        )
        heapq.heappush(self._queue, request)
        self._live += 1
        self.stats.record_request(priority)
        return request

    def cancel(self, request: _QueuedRequest) -> None:
        """Mark a queued request as cancelled (e.g. a prefetch squashed by a
        pipeline flush).  It will be skipped when it reaches the head."""
        if not request.cancelled:
            request.cancelled = True
            self._live -= 1

    def tick(self, cycle: int) -> int:
        """Grant up to ``grants_per_cycle`` queued requests.  Returns the
        number of grants issued this cycle."""
        granted = 0
        while granted < self.grants_per_cycle and self._queue:
            request = heapq.heappop(self._queue)
            if request.cancelled:
                continue
            waited = max(0, cycle - request.submit_cycle)
            self.stats.record_grant(request.priority, waited)
            self._live -= 1
            request.on_grant(cycle)
            granted += 1
        return granted

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no live (non-cancelled) request is queued."""
        return self._live == 0

    @property
    def pending(self) -> int:
        return self._live

    def pending_by_priority(self, priority: BusPriority) -> int:
        return sum(
            1 for r in self._queue if not r.cancelled and r.priority == priority
        )
