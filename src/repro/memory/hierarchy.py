"""Instruction-side memory hierarchy: L0 / L1-I / unified L2 / memory + bus.

Responsibilities:

* own the cache content models (:class:`~repro.memory.cache.Cache`) and
  their port timing (:class:`~repro.memory.port.AccessPort`),
* own the shared L2 bus and its arbitration,
* provide the *demand* path (instruction fetch misses), the *prefetch*
  path, and the *data* path (loads that miss the L1 D-cache) used by the
  back-end model,
* expose latencies from the CACTI-like model so fetch engines can decide
  which of the parallel probe sources returns data first.

Fill policy is deliberately **not** decided here: FDP promotes used
prefetch-buffer lines into the I-cache while CLGP does not, and demand
misses fill the "emergency cache" (L1, or L0 when present) -- those choices
belong to the fetch engines, which call :meth:`fill_l1` / :meth:`fill_l0`
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .bus import BusPriority, L2Bus
from .cache import Cache
from .latency import MEMORY_LATENCY_CYCLES, CactiLikeModel
from .port import AccessPort
from ..technology import TechnologyNode, resolve_technology

#: Canonical names for instruction fetch / prefetch sources, matching the
#: labels in the paper's Figures 7 and 8.
SOURCE_PREBUFFER = "PB"
SOURCE_L0 = "il0"
SOURCE_L1 = "il1"
SOURCE_L2 = "ul2"
SOURCE_MEMORY = "Mem"

FETCH_SOURCES = (SOURCE_PREBUFFER, SOURCE_L0, SOURCE_L1, SOURCE_L2, SOURCE_MEMORY)


@dataclass
class HierarchyConfig:
    """Structural parameters of the instruction-side hierarchy.

    Defaults follow the paper's Table 2.
    """

    technology: object = "0.09um"
    l1_size_bytes: int = 4096
    l1_associativity: int = 2
    l1_line_size: int = 64
    l1_pipelined: bool = False
    l0_size_bytes: Optional[int] = None     #: None = no L0 cache
    l0_line_size: int = 64
    l2_size_bytes: int = 1 << 20
    l2_associativity: int = 2
    l2_line_size: int = 128
    memory_latency: int = MEMORY_LATENCY_CYCLES
    #: Force the L1 hit latency (e.g. the "ideal" configuration of Figure 1
    #: uses 1 cycle regardless of size).  ``None`` = use the CACTI model.
    l1_latency_override: Optional[int] = None
    l2_latency_override: Optional[int] = None


class MemoryHierarchy:
    """Instruction-path memory system shared by all fetch engines."""

    def __init__(self, config: HierarchyConfig, bus: Optional[L2Bus] = None):
        self.config = config
        self.technology: TechnologyNode = resolve_technology(config.technology)
        self.latency_model = CactiLikeModel(self.technology)

        self.l1_latency = (
            config.l1_latency_override
            if config.l1_latency_override is not None
            else self.latency_model.access_latency_cycles(config.l1_size_bytes)
        )
        self.l2_latency = (
            config.l2_latency_override
            if config.l2_latency_override is not None
            else self.latency_model.access_latency_cycles(config.l2_size_bytes)
        )
        self.l0_latency = 1
        self.memory_latency = config.memory_latency

        self.l1 = Cache(
            "il1", config.l1_size_bytes, config.l1_line_size,
            config.l1_associativity,
        )
        self.l1_port = AccessPort(self.l1_latency, pipelined=config.l1_pipelined)
        self.l0: Optional[Cache] = None
        self.l0_port: Optional[AccessPort] = None
        if config.l0_size_bytes:
            self.l0 = Cache(
                "il0", config.l0_size_bytes, config.l0_line_size,
                associativity=None,  # fully associative
            )
            self.l0_port = AccessPort(self.l0_latency, pipelined=False)
        self.l2 = Cache(
            "ul2", config.l2_size_bytes, config.l2_line_size,
            config.l2_associativity,
        )
        self.bus = bus if bus is not None else L2Bus()

        # Simple counters for the instruction/prefetch traffic beyond L1.
        self.demand_l2_hits = 0
        self.demand_memory_accesses = 0
        self.prefetch_l2_hits = 0
        self.prefetch_memory_accesses = 0

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    @property
    def line_size(self) -> int:
        return self.config.l1_line_size

    def line_address(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    @property
    def has_l0(self) -> bool:
        return self.l0 is not None

    # ------------------------------------------------------------------
    # fill helpers (fill policy decided by the fetch engines)
    # ------------------------------------------------------------------
    def fill_l1(self, line_addr: int) -> Optional[int]:
        return self.l1.fill(line_addr)

    def fill_l0(self, line_addr: int) -> Optional[int]:
        if self.l0 is None:
            raise RuntimeError("no L0 cache configured")
        return self.l0.fill(line_addr)

    def fill_emergency(self, line_addr: int) -> Optional[int]:
        """Fill the 'emergency cache': L0 when present, otherwise L1.

        This is where CLGP stores lines obtained from the hierarchy after a
        demand miss (typically on mispredicted paths).
        """
        if self.l0 is not None:
            return self.fill_l0(line_addr)
        return self.fill_l1(line_addr)

    # ------------------------------------------------------------------
    # demand path (instruction fetch miss in PB/L0/L1)
    # ------------------------------------------------------------------
    def demand_instruction_access(
        self,
        line_addr: int,
        cycle: int,
        on_complete: Callable[[int, str], None],
    ) -> None:
        """Fetch ``line_addr`` from L2/memory for a demand miss.

        ``on_complete(arrival_cycle, source)`` fires when the bus grants the
        request, with ``source`` one of ``'ul2'`` / ``'Mem'``.  The returned
        line fills the L2 on a memory access; filling L0/L1 is the caller's
        decision.
        """

        def _granted(grant_cycle: int) -> None:
            if self.l2.lookup(line_addr):
                self.demand_l2_hits += 1
                on_complete(grant_cycle + self.l2_latency, SOURCE_L2)
            else:
                self.demand_memory_accesses += 1
                self.l2.fill(line_addr)
                on_complete(
                    grant_cycle + self.l2_latency + self.memory_latency,
                    SOURCE_MEMORY,
                )

        self.bus.submit(BusPriority.INSTRUCTION_DEMAND, cycle, _granted,
                        tag=("ifetch", line_addr))

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------
    def prefetch_access(
        self,
        line_addr: int,
        cycle: int,
        on_complete: Callable[[int, str], None],
        probe_l1: bool = True,
    ) -> None:
        """Bring ``line_addr`` towards the pre-buffer for a prefetch.

        If ``probe_l1`` and the line is resident in L1, the prefetch is
        satisfied locally (no bus traffic) after the L1 access latency.
        Otherwise the request arbitrates for the L2 bus at the lowest
        priority and is served by L2 or memory.
        """
        if probe_l1 and self.l1.contains(line_addr):
            on_complete(cycle + self.l1_latency, SOURCE_L1)
            return

        def _granted(grant_cycle: int) -> None:
            if self.l2.lookup(line_addr):
                self.prefetch_l2_hits += 1
                on_complete(grant_cycle + self.l2_latency, SOURCE_L2)
            else:
                self.prefetch_memory_accesses += 1
                self.l2.fill(line_addr)
                on_complete(
                    grant_cycle + self.l2_latency + self.memory_latency,
                    SOURCE_MEMORY,
                )

        self.bus.submit(BusPriority.PREFETCH, cycle, _granted,
                        tag=("prefetch", line_addr))

    # ------------------------------------------------------------------
    # data path (used by the back-end model for L1-D misses)
    # ------------------------------------------------------------------
    def demand_data_access(
        self,
        cycle: int,
        misses_l2: bool,
        on_complete: Callable[[int, str], None],
    ) -> None:
        """A load that missed the L1 data cache contends for the bus with
        the highest priority; ``misses_l2`` selects L2 vs memory service."""

        def _granted(grant_cycle: int) -> None:
            if misses_l2:
                on_complete(
                    grant_cycle + self.l2_latency + self.memory_latency,
                    SOURCE_MEMORY,
                )
            else:
                on_complete(grant_cycle + self.l2_latency, SOURCE_L2)

        self.bus.submit(BusPriority.DATA_DEMAND, cycle, _granted, tag=("data",))

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Advance the bus by one cycle (grants at most one request)."""
        self.bus.tick(cycle)
