"""Replacement policies for set-associative caches and pre-buffers.

The paper's caches use LRU; the prestage buffer uses LRU *restricted to
replaceable entries* (consumers counter == 0), which is implemented on top
of the same machinery in :mod:`repro.core.prestage_buffer`.  FIFO and
Random policies are provided for sensitivity studies.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Hashable, List, Optional


class ReplacementPolicy(ABC):
    """Tracks recency/insertion order for the ways of a single cache set."""

    @abstractmethod
    def touch(self, tag: Hashable) -> None:
        """Record a hit/use of ``tag``."""

    @abstractmethod
    def insert(self, tag: Hashable) -> None:
        """Record that ``tag`` was filled into the set."""

    @abstractmethod
    def evict(self, tag: Hashable) -> None:
        """Record that ``tag`` was removed from the set."""

    @abstractmethod
    def victim(self, resident: List[Hashable]) -> Hashable:
        """Choose which of ``resident`` tags to replace."""

    @abstractmethod
    def clone(self) -> "ReplacementPolicy":
        """Independent copy with identical state (for cache snapshots)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    def __init__(self) -> None:
        self._stamp: Dict[Hashable, int] = {}
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def touch(self, tag: Hashable) -> None:
        self._stamp[tag] = self._tick()

    def insert(self, tag: Hashable) -> None:
        self._stamp[tag] = self._tick()

    def evict(self, tag: Hashable) -> None:
        self._stamp.pop(tag, None)

    def victim(self, resident: List[Hashable]) -> Hashable:
        return min(resident, key=lambda t: self._stamp.get(t, -1))

    def clone(self) -> "LRUPolicy":
        new = LRUPolicy()
        new._stamp = dict(self._stamp)
        new._clock = self._clock
        return new

    def age_rank(self, resident: List[Hashable]) -> List[Hashable]:
        """Resident tags sorted oldest-first (exposed for the prestage
        buffer, which needs "LRU among replaceable entries")."""
        return sorted(resident, key=lambda t: self._stamp.get(t, -1))


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement (insertion order, hits ignored)."""

    def __init__(self) -> None:
        self._order: Dict[Hashable, int] = {}
        self._clock = 0

    def touch(self, tag: Hashable) -> None:  # hits do not change FIFO order
        pass

    def insert(self, tag: Hashable) -> None:
        self._clock += 1
        self._order[tag] = self._clock

    def evict(self, tag: Hashable) -> None:
        self._order.pop(tag, None)

    def victim(self, resident: List[Hashable]) -> Hashable:
        return min(resident, key=lambda t: self._order.get(t, -1))

    def clone(self) -> "FIFOPolicy":
        new = FIFOPolicy()
        new._order = dict(self._order)
        new._clock = self._clock
        return new


class RandomPolicy(ReplacementPolicy):
    """Uniform random replacement (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def touch(self, tag: Hashable) -> None:
        pass

    def insert(self, tag: Hashable) -> None:
        pass

    def evict(self, tag: Hashable) -> None:
        pass

    def victim(self, resident: List[Hashable]) -> Hashable:
        return self._rng.choice(list(resident))

    def clone(self) -> "RandomPolicy":
        new = RandomPolicy()
        new._rng.setstate(self._rng.getstate())
        return new


_POLICY_FACTORIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ('lru', 'fifo', 'random')."""
    try:
        factory = _POLICY_FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICY_FACTORIES)}"
        ) from None
    if factory is RandomPolicy:
        return factory(seed)
    return factory()
