"""Memory-system substrate: caches, ports, latency model, bus, hierarchy."""

from .area import (
    FrontEndBudget,
    StructureEstimate,
    estimate_structure,
    front_end_budget,
)
from .bus import BusPriority, L2Bus
from .cache import Cache, CacheStats
from .hierarchy import (
    FETCH_SOURCES,
    HierarchyConfig,
    MemoryHierarchy,
    SOURCE_L0,
    SOURCE_L1,
    SOURCE_L2,
    SOURCE_MEMORY,
    SOURCE_PREBUFFER,
)
from .latency import (
    CactiLikeModel,
    L1_SIZES_BYTES,
    L2_SIZE_BYTES,
    MEMORY_LATENCY_CYCLES,
    access_latency,
    l1_latency_table,
    l2_latency,
    one_cycle_prebuffer_entries,
    pipelined_prebuffer_stages,
    table3_rows,
)
from .port import AccessPort
from .replacement import FIFOPolicy, LRUPolicy, RandomPolicy, make_policy

__all__ = [
    "AccessPort",
    "BusPriority",
    "Cache",
    "CacheStats",
    "CactiLikeModel",
    "FrontEndBudget",
    "StructureEstimate",
    "estimate_structure",
    "front_end_budget",
    "FETCH_SOURCES",
    "FIFOPolicy",
    "HierarchyConfig",
    "L1_SIZES_BYTES",
    "L2Bus",
    "L2_SIZE_BYTES",
    "LRUPolicy",
    "MEMORY_LATENCY_CYCLES",
    "MemoryHierarchy",
    "RandomPolicy",
    "SOURCE_L0",
    "SOURCE_L1",
    "SOURCE_L2",
    "SOURCE_MEMORY",
    "SOURCE_PREBUFFER",
    "access_latency",
    "l1_latency_table",
    "l2_latency",
    "make_policy",
    "one_cycle_prebuffer_entries",
    "pipelined_prebuffer_stages",
    "table3_rows",
]
