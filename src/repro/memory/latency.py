"""Cache access-latency model (paper Table 3, CACTI-3.0 style).

The paper uses CACTI 3.0 to obtain cache access times for each size and
technology node, divides them by the SIA-projected cycle time, and rounds
up to whole cycles.  CACTI itself is a large C program; this module
reproduces the part of it the paper actually consumes:

* the exact Table 3 latencies for the sizes the paper sweeps,
* an analytical interpolation for other sizes (log-linear in size, built on
  the Table 3 anchor points), so users of the library can configure
  arbitrary cache sizes,
* the "largest structure reachable in one cycle" query used to size the
  pre-buffers and the L0 cache (512 B at 0.09 um, 256 B at 0.045 um).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..technology import TECH_045, TECH_090, TechnologyNode, resolve_technology

#: Sizes (bytes) swept for the L1 I-cache in the paper's figures.
L1_SIZES_BYTES = (256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)

#: The unified L2 size used throughout the paper.
L2_SIZE_BYTES = 1 << 20

#: Paper Table 3: access latency (cycles) per cache size per technology.
_TABLE3: Dict[float, Dict[int, int]] = {
    0.09: {
        256: 1, 512: 1, 1024: 2, 2048: 2, 4096: 3,
        8192: 3, 16384: 3, 32768: 3, 65536: 3, L2_SIZE_BYTES: 17,
    },
    0.045: {
        256: 1, 512: 2, 1024: 3, 2048: 4, 4096: 4,
        8192: 4, 16384: 4, 32768: 4, 65536: 5, L2_SIZE_BYTES: 24,
    },
}

#: Main memory latency, cycles (paper Table 2), independent of cache size.
MEMORY_LATENCY_CYCLES = 200


class CactiLikeModel:
    """Analytical access-time model calibrated to Table 3.

    ``access_time_ns`` interpolates log-linearly between the Table 3 anchor
    points converted back to nanoseconds (latency * cycle_time); the paper's
    own sizes always round-trip to the exact Table 3 cycle counts.
    """

    def __init__(self, technology) -> None:
        self.technology: TechnologyNode = resolve_technology(technology)
        feature = self.technology.feature_size_um
        if feature not in _TABLE3:
            # Derive anchors by scaling the nearest published node's access
            # times with feature size (classic constant-field scaling).
            nearest = min(_TABLE3, key=lambda f: abs(f - feature))
            scale = feature / nearest
            base_cycle = resolve_technology(nearest).cycle_time_ns
            self._anchors_ns = {
                size: lat * base_cycle * scale
                for size, lat in _TABLE3[nearest].items()
            }
            self._exact_cycles: Dict[int, int] = {}
        else:
            cycle = self.technology.cycle_time_ns
            self._exact_cycles = dict(_TABLE3[feature])
            self._anchors_ns = {
                size: lat * cycle for size, lat in _TABLE3[feature].items()
            }
        self._anchor_sizes = sorted(self._anchors_ns)

    # -- nanosecond-level model -----------------------------------------
    def access_time_ns(self, size_bytes: int) -> float:
        """Estimated access time in nanoseconds for a cache of ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError("cache size must be positive")
        sizes = self._anchor_sizes
        log_size = math.log2(size_bytes)
        if size_bytes <= sizes[0]:
            return self._anchors_ns[sizes[0]]
        if size_bytes >= sizes[-1]:
            # Extrapolate beyond the largest anchor with the slope of the
            # last segment.
            lo, hi = sizes[-2], sizes[-1]
        else:
            lo = max(s for s in sizes if s <= size_bytes)
            hi = min(s for s in sizes if s >= size_bytes)
            if lo == hi:
                return self._anchors_ns[lo]
        t_lo, t_hi = self._anchors_ns[lo], self._anchors_ns[hi]
        frac = (log_size - math.log2(lo)) / (math.log2(hi) - math.log2(lo))
        return t_lo + frac * (t_hi - t_lo)

    # -- cycle-level model ------------------------------------------------
    def access_latency_cycles(self, size_bytes: int) -> int:
        """Access latency in whole cycles for a cache of ``size_bytes``.

        Sizes listed in Table 3 return the table value exactly; other sizes
        use ``ceil(access_time_ns / cycle_time_ns)``.
        """
        if size_bytes in self._exact_cycles:
            return self._exact_cycles[size_bytes]
        cycles = math.ceil(
            self.access_time_ns(size_bytes) / self.technology.cycle_time_ns - 1e-9
        )
        return max(1, cycles)

    def one_cycle_capacity_bytes(self, line_size: int = 64,
                                 max_size: int = 1 << 20) -> int:
        """Largest power-of-two capacity accessible in a single cycle.

        The paper uses this to size pre-buffers and the L0 cache: 512 bytes
        at 0.09 um and 256 bytes at 0.045 um.
        """
        best = line_size
        size = line_size
        while size <= max_size:
            if self.access_latency_cycles(size) == 1:
                best = size
            else:
                break
            size *= 2
        return best


def access_latency(size_bytes: int, technology) -> int:
    """Convenience wrapper: latency in cycles of a ``size_bytes`` cache."""
    return CactiLikeModel(technology).access_latency_cycles(size_bytes)


def l1_latency_table(technology) -> Dict[int, int]:
    """Latencies for every L1 size swept in the paper (one Table 3 row)."""
    model = CactiLikeModel(technology)
    return {size: model.access_latency_cycles(size) for size in L1_SIZES_BYTES}


def l2_latency(technology) -> int:
    """Latency of the 1 MB unified L2 at the given technology node."""
    return CactiLikeModel(technology).access_latency_cycles(L2_SIZE_BYTES)


def table3_rows() -> Dict[str, Dict[int, int]]:
    """The full Table 3 (both technologies, L1 sizes plus the 1MB L2)."""
    out: Dict[str, Dict[int, int]] = {}
    for tech in (TECH_090, TECH_045):
        model = CactiLikeModel(tech)
        row = {size: model.access_latency_cycles(size) for size in L1_SIZES_BYTES}
        row[L2_SIZE_BYTES] = model.access_latency_cycles(L2_SIZE_BYTES)
        out[tech.name] = row
    return out


def one_cycle_prebuffer_entries(technology, line_size: int = 64) -> int:
    """Number of ``line_size``-byte entries a one-cycle pre-buffer can have
    (8 at 0.09 um, 4 at 0.045 um for 64-byte lines)."""
    capacity = CactiLikeModel(technology).one_cycle_capacity_bytes(line_size)
    return max(1, capacity // line_size)


def pipelined_prebuffer_stages(technology, entries: int = 16,
                               line_size: int = 64) -> int:
    """Number of pipeline stages a large pre-buffer needs.

    The paper pipelines a 16-entry pre-buffer into two stages at 0.09 um and
    three stages at 0.045 um; this generalises that using the latency model.
    """
    model = CactiLikeModel(technology)
    return max(1, model.access_latency_cycles(entries * line_size))
