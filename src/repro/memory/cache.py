"""Set-associative cache model (tags only).

Only tag state matters to the study, so the model stores which line
addresses are resident, with a pluggable replacement policy per set.
Latency and port behaviour live in :mod:`repro.memory.port`; this class is
purely about contents.

Used for the L0 filter cache, the L1 instruction cache, the unified L2 and
(structurally) the fully-associative pre-buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _replace
from typing import Dict, List, Optional

from .replacement import ReplacementPolicy, make_policy


@dataclass
class CacheStats:
    """Hit/miss counters for a cache instance."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative, write-allocate, tags-only cache.

    Parameters
    ----------
    name:
        Identifier used in statistics output (e.g. ``"il1"``, ``"ul2"``).
    size_bytes:
        Total capacity.  Must be a multiple of ``line_size * associativity``
        (one exception: ``associativity=None`` selects full associativity).
    line_size:
        Line size in bytes.
    associativity:
        Number of ways; ``None`` or a value >= number of lines means fully
        associative.
    policy:
        Replacement policy name ('lru', 'fifo', 'random').
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_size: int = 64,
        associativity: Optional[int] = 2,
        policy: str = "lru",
        policy_seed: int = 0,
    ) -> None:
        if size_bytes <= 0 or line_size <= 0:
            raise ValueError("cache size and line size must be positive")
        if size_bytes % line_size:
            raise ValueError("cache size must be a multiple of the line size")
        num_lines = size_bytes // line_size
        if associativity is None or associativity >= num_lines:
            associativity = num_lines
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if num_lines % associativity:
            raise ValueError(
                f"{name}: {num_lines} lines not divisible by associativity "
                f"{associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.line_size = line_size
        #: Mask for power-of-two line sizes (the common case); falls back to
        #: modulo arithmetic otherwise.
        self._line_mask = ~(line_size - 1) if line_size & (line_size - 1) == 0 else None
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        self.policy_name = policy
        self._policy_seed = policy_seed
        # Sets and their policies are allocated lazily on first touch: large
        # caches (the 1 MB L2 has 4096 sets) would otherwise pay thousands
        # of allocations per Simulator even when a run touches a handful.
        self._sets: Dict[int, Dict[int, bool]] = {}
        self._policies: Dict[int, ReplacementPolicy] = {}
        self.stats = CacheStats()

    # -- address mapping ---------------------------------------------------
    def line_address(self, addr: int) -> int:
        mask = self._line_mask
        if mask is not None:
            return addr & mask
        return addr - (addr % self.line_size)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_size) % self.num_sets

    def _set_and_policy(self, idx: int):
        """Set contents + policy for ``idx``, allocating them on demand."""
        cset = self._sets.get(idx)
        if cset is None:
            cset = self._sets[idx] = {}
            self._policies[idx] = make_policy(
                self.policy_name, self._policy_seed + idx
            )
        return cset, self._policies[idx]

    # -- content queries ----------------------------------------------------
    def contains(self, addr: int) -> bool:
        """Tag check without touching replacement state or statistics.

        This models a *tag probe* (e.g. FDP's Enqueue Cache Probe
        Filtering, which uses "an additional tag port or replicated tags").
        """
        line = self.line_address(addr)
        cset = self._sets.get(self._set_index(line))
        return cset is not None and line in cset

    def lookup(self, addr: int) -> bool:
        """A real access: updates replacement state and hit/miss counters."""
        line = self.line_address(addr)
        idx = self._set_index(line)
        cset = self._sets.get(idx)
        if cset is not None and line in cset:
            self._policies[idx].touch(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    # -- content updates -----------------------------------------------------
    def fill(self, addr: int) -> Optional[int]:
        """Insert the line containing ``addr``.

        Returns the evicted line address (or ``None`` if no eviction /
        the line was already present).
        """
        line = self.line_address(addr)
        idx = self._set_index(line)
        cset, policy = self._set_and_policy(idx)
        if line in cset:
            policy.touch(line)
            return None
        evicted = None
        if len(cset) >= self.associativity:
            evicted = policy.victim(list(cset.keys()))
            del cset[evicted]
            policy.evict(evicted)
            self.stats.evictions += 1
        cset[line] = True
        policy.insert(line)
        self.stats.fills += 1
        return evicted

    def fill_span(self, addrs) -> None:
        """Insert a pre-computed run of line addresses, as :meth:`fill`
        would one by one.

        The batched functional pass (``simulator.warming``) replays whole
        fetch-stream spans at once; per-line ``fill`` calls then dominate.
        For the default LRU policy the set/policy bookkeeping is inlined
        here -- contents, stamp order, clock values and statistics evolve
        exactly as the equivalent ``fill`` sequence (evicted lines are not
        reported; no batched caller consumes them).  Other policies fall
        back to plain ``fill`` calls.
        """
        if self.policy_name != "lru":
            for addr in addrs:
                self.fill(addr)
            return
        mask = self._line_mask
        line_size = self.line_size
        num_sets = self.num_sets
        associativity = self.associativity
        sets = self._sets
        policies = self._policies
        fills = 0
        evictions = 0
        for addr in addrs:
            line = addr & mask if mask is not None else addr - (addr % line_size)
            idx = (line // line_size) % num_sets
            cset = sets.get(idx)
            if cset is None:
                cset = sets[idx] = {}
                policy = policies[idx] = make_policy(
                    self.policy_name, self._policy_seed + idx
                )
            else:
                policy = policies[idx]
            stamps = policy._stamp
            if line in cset:
                policy._clock += 1
                stamps[line] = policy._clock
                continue
            if len(cset) >= associativity:
                victim = min(cset, key=lambda tag: stamps.get(tag, -1))
                del cset[victim]
                stamps.pop(victim, None)
                evictions += 1
            cset[line] = True
            policy._clock += 1
            stamps[line] = policy._clock
            fills += 1
        self.stats.fills += fills
        self.stats.evictions += evictions

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr``; returns True if present."""
        line = self.line_address(addr)
        idx = self._set_index(line)
        cset = self._sets.get(idx)
        if cset is not None and line in cset:
            del cset[line]
            self._policies[idx].evict(line)
            self.stats.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (does not reset statistics)."""
        for cset in self._sets.values():
            cset.clear()

    # -- snapshots (warm-state reuse across runs) -----------------------------
    def snapshot(self) -> tuple:
        """Capture contents, replacement state and statistics.

        Used to warm many simulations from one replayed line trace: the
        warm-up replays once into a fresh cache, snapshots it, and later
        runs restore the snapshot instead of re-running thousands of
        :meth:`fill` calls.
        """
        return (
            {i: dict(s) for i, s in self._sets.items()},
            {i: p.clone() for i, p in self._policies.items()},
            _replace(self.stats),
        )

    def restore(self, snap: tuple) -> None:
        """Restore a :meth:`snapshot` (contents, policies and statistics)."""
        sets, policies, stats = snap
        self._sets = {i: dict(s) for i, s in sets.items()}
        self._policies = {i: p.clone() for i, p in policies.items()}
        self.stats = _replace(stats)

    def __deepcopy__(self, memo: dict) -> "Cache":
        """Fast deep copy via the snapshot machinery.

        Simulator checkpoints deep-copy whole machines; the caches are by
        far the largest objects involved, and the generic ``copy.deepcopy``
        walk over thousands of per-set dict entries dominates checkpoint
        cost.  Contents, replacement state and statistics are copied; the
        geometry scalars are immutable and shared.
        """
        new = object.__new__(Cache)
        new.name = self.name
        new.size_bytes = self.size_bytes
        new.line_size = self.line_size
        new._line_mask = self._line_mask
        new.associativity = self.associativity
        new.num_sets = self.num_sets
        new.policy_name = self.policy_name
        new._policy_seed = self._policy_seed
        new._sets = {i: dict(s) for i, s in self._sets.items()}
        new._policies = {i: p.clone() for i, p in self._policies.items()}
        new.stats = _replace(self.stats)
        memo[id(self)] = new
        return new

    # -- introspection --------------------------------------------------------
    @property
    def num_lines(self) -> int:
        return self.num_sets * self.associativity

    def resident_lines(self) -> List[int]:
        """All resident line addresses (mainly for tests/invariants)."""
        out: List[int] = []
        for cset in self._sets.values():
            out.extend(cset.keys())
        return out

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    def __contains__(self, addr: int) -> bool:
        return self.contains(addr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name!r}, {self.size_bytes}B, {self.associativity}-way, "
            f"{self.line_size}B lines, {self.num_sets} sets)"
        )
