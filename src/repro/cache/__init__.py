"""Persistent artifact cache for expensive derived simulation artifacts.

Public surface:

* :func:`repro.cache.store.active_store` / :func:`configure` /
  :data:`SCHEMA_VERSION` -- the content-addressed on-disk store,
* :func:`repro.cache.keys.content_key` / :func:`stable_repr` -- stable,
  process-independent artifact keys,
* :func:`repro.cache.traces.ensure_compiled_trace` -- compiled
  correct-path traces,
* :mod:`repro.cache.results` -- full-run result caching
  (:func:`result_cache_enabled` / :func:`configure_result_cache`),
* :mod:`repro.cache.shared` -- workload-aware checkpoint pickling.
"""

from .keys import content_key, stable_repr
from .results import (
    ENV_RESULT_CACHE_DISABLE,
    RESULT_CACHE_STATS,
    configure_result_cache,
    reset_result_stats,
    result_cache_enabled,
)
from .store import (
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ENV_CACHE_DISABLE,
    SCHEMA_VERSION,
    ArtifactStore,
    FsckReport,
    GcReport,
    active_store,
    cache_enabled,
    configure,
    frame_digest,
    get_store,
    reset_configuration,
    restore_configuration,
    snapshot_configuration,
    temporary_cache_dir,
    unframe_digest,
)
from .traces import clear_trace_cache, ensure_compiled_trace, trace_bucket

__all__ = [
    "ArtifactStore",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ENV_CACHE_DISABLE",
    "ENV_RESULT_CACHE_DISABLE",
    "FsckReport",
    "GcReport",
    "RESULT_CACHE_STATS",
    "SCHEMA_VERSION",
    "active_store",
    "cache_enabled",
    "clear_trace_cache",
    "configure",
    "configure_result_cache",
    "content_key",
    "ensure_compiled_trace",
    "frame_digest",
    "get_store",
    "reset_configuration",
    "reset_result_stats",
    "restore_configuration",
    "result_cache_enabled",
    "snapshot_configuration",
    "stable_repr",
    "temporary_cache_dir",
    "trace_bucket",
    "unframe_digest",
]
