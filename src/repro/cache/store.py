"""Content-addressed, versioned on-disk artifact store.

Every expensive derived artifact of the toolkit -- compiled correct-path
traces, BBV profiles, interval selections, functional proxy profiles,
warm-up artifacts, warm simulator checkpoints, sampled interval
measurements -- is deterministic given its key material, so it can be
computed once and replayed by every later process.  This module provides
the store those artifacts live in:

* **Layout** -- ``<root>/v<SCHEMA_VERSION>/<kind>/<sha256>.pkl``.  The
  schema version is baked into the directory name, so bumping
  :data:`SCHEMA_VERSION` (changed artifact formats, changed pickling)
  orphans old artifacts instead of misreading them: a version mismatch
  is simply a cache miss followed by a recompute.
* **Addressing** -- keys are SHA-256 digests of a canonical
  serialization of the key material (see :mod:`repro.cache.keys`);
  artifacts with equal content keys are interchangeable.
* **Robustness** -- writes are atomic (temp file + ``os.replace``) so a
  killed process never publishes a torn artifact; every payload carries
  a SHA-256 digest frame (:func:`frame_digest`), so a torn or
  bit-flipped file of *any* kind is detected before decompression or
  unpickling, treated as a miss, deleted, and recomputed.  Transient
  ``OSError``s are retried with bounded backoff; ``ENOSPC`` or a write
  path that stays broken flips the store to warn-once *read-only*
  operation that re-probes after a backoff (``cache stats`` shows the
  counters), never silence and never a crash.  ``cache fsck`` audits
  the whole store offline.
* **Concurrency** -- an advisory ``fcntl`` lock file per store root
  coordinates *processes*: artifact reads/writes hold it shared,
  maintenance (``gc``/``fsck``/``clear``) holds it exclusive, so
  eviction can never unlink an artifact another process is mid-read on
  and every ``.tmp`` file seen under the exclusive lock is provably
  orphaned.  Locking is best-effort: where ``fcntl`` is unavailable the
  store degrades to today's lockless behaviour.
* **Configuration** -- the default root is ``.repro-cache/`` in the
  working directory, overridable with ``REPRO_CACHE_DIR`` or
  :func:`configure` (the CLI's ``--cache-dir``); caching is disabled
  entirely with ``REPRO_CACHE_DISABLE=1`` or ``configure(enabled=False)``
  (the CLI's ``--no-cache``), in which case :func:`active_store` returns
  ``None`` and every caller falls back to plain recomputation.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import os
import pickle
import shutil
import threading
import time
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .. import faults

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Version of the on-disk artifact schema.  Bump whenever the format of
#: any persisted artifact changes incompatibly (new columnar layout,
#: different checkpoint pickling, changed measurement payloads); old
#: versions' directories are ignored and reclaimed by ``cache clear``.
#: v2: split-invariant functional skips (``PredictionUnit._skip_partial``
#: rides in checkpoints and changes how resumed skips train the
#: predictor, so v1 checkpoints/measurements no longer replay
#: bit-identically) plus the positioned-checkpoint and full-run result
#: artifact kinds.
#: v3: checkpoint payloads (warm and positioned) are digest-framed
#: (:func:`frame_digest`), so a bit-flipped checkpoint that still
#: decompresses and unpickles is detected on restore instead of
#: replaying wrong simulator state.
#: v4: the digest frame is universal -- the store itself frames every
#: artifact kind (traces, profiles, selections, checkpoints, results),
#: so corruption of any payload is caught at the framing layer before
#: zlib/pickle ever see it, and ``cache fsck`` can audit the store
#: without deserializing anything.
SCHEMA_VERSION = 4

#: Default store root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment overrides (the CLI flags map onto :func:`configure`).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


@dataclass
class StoreStats:
    """Per-process counters of store traffic (tests assert reuse on them)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    io_retries: int = 0      #: transient OSErrors retried (and recovered)
    read_errors: int = 0     #: reads abandoned after the retry budget
    write_errors: int = 0    #: writes abandoned after the retry budget
    crashed_writes: int = 0  #: injected write_crash faults (tmp left behind)
    skipped_writes: int = 0  #: writes dropped while degraded read-only
    reprobes: int = 0        #: write attempts after a degradation backoff
    recoveries: int = 0      #: re-probes that restored cached operation


def frame_digest(payload: bytes) -> bytes:
    """Prefix ``payload`` with its SHA-256 digest.

    Every payload goes through this inside :meth:`ArtifactStore.put_bytes`
    so a corrupted file that still decompresses *and* unpickles (a rotted
    bit inside pickled simulator state) is caught on read -- replaying
    a tampered artifact would silently produce wrong results, the one
    failure mode a cache is never allowed to have.
    """
    return hashlib.sha256(payload).digest() + payload


def unframe_digest(framed: Optional[bytes]) -> Optional[bytes]:
    """Verify and strip a :func:`frame_digest` prefix; ``None`` (treat as
    a miss and recompute) when the digest does not match the payload."""
    if framed is None or len(framed) <= 32:
        return None
    digest, payload = framed[:32], framed[32:]
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`ArtifactStore.gc` pass removed."""

    files_removed: int = 0       #: artifacts evicted (LRU order)
    bytes_removed: int = 0
    tmp_files_removed: int = 0   #: orphaned writer temp files reaped
    tmp_bytes_removed: int = 0


@dataclass
class FsckReport:
    """What :meth:`ArtifactStore.fsck` found (and, with repair, removed)."""

    #: kind -> [intact files, corrupt files] for the current schema.
    per_kind: Dict[str, List[int]] = field(default_factory=dict)
    tmp_files: int = 0           #: orphaned writer temp files
    tmp_bytes: int = 0
    other_version_files: int = 0  #: artifacts under other ``v<N>`` dirs
    repaired: bool = False       #: whether this pass unlinked the damage

    @property
    def ok(self) -> int:
        return sum(entry[0] for entry in self.per_kind.values())

    @property
    def corrupt(self) -> int:
        return sum(entry[1] for entry in self.per_kind.values())

    @property
    def scanned(self) -> int:
        return self.ok + self.corrupt

    def clean(self) -> bool:
        """No damage and no litter (orphaned schema dirs are benign)."""
        return self.corrupt == 0 and self.tmp_files == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "corrupt": self.corrupt,
            "tmp_files": self.tmp_files,
            "tmp_bytes": self.tmp_bytes,
            "other_version_files": self.other_version_files,
            "repaired": self.repaired,
            "clean": self.clean(),
            "per_kind": {kind: {"ok": entry[0], "corrupt": entry[1]}
                         for kind, entry in sorted(self.per_kind.items())},
        }


class _StoreLock:
    """Advisory reader-writer lock for one store root.

    Cross-process coordination is an ``fcntl`` ``flock`` on
    ``<root>/.lock``: shared while reading or publishing artifacts,
    exclusive for maintenance (``gc``/``fsck``/``clear``).  Writers hold
    the shared lock across the whole temp-write + ``os.replace``
    publish, so under the exclusive lock every visible ``.tmp`` file
    belongs to a dead process and may be reaped.

    In-process, a condition variable multiplexes all threads onto one
    lock fd: ``flock`` locks belong to the open file description, so a
    second fd in the same process would deadlock a reader thread
    against its own maintenance thread.

    Locking is strictly best-effort -- if ``fcntl`` is missing or the
    lock file cannot be created/locked (read-only media, odd network
    filesystems), operations proceed unlocked exactly as before the
    lock existed.  A store must never fail *because of* its safety net.
    """

    def __init__(self, root: Path) -> None:
        self._root = Path(root)
        self._path = self._root / ".lock"
        self._cond = threading.Condition()
        self._shared = 0
        self._exclusive = False
        self._fd: Optional[int] = None

    def _flock(self, flags: int, create: bool) -> Optional[int]:
        if fcntl is None:
            return None
        try:
            if create:
                self._root.mkdir(parents=True, exist_ok=True)
            elif not self._root.is_dir():
                # Nothing on disk to coordinate over; a read miss must
                # not create the store root as a side effect.
                return None
            fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            return None
        try:
            fcntl.flock(fd, flags)
        except OSError:
            os.close(fd)
            return None
        return fd

    def _unlock(self) -> None:
        if self._fd is None:
            return
        with contextlib.suppress(OSError):
            fcntl.flock(self._fd, fcntl.LOCK_UN)
        with contextlib.suppress(OSError):
            os.close(self._fd)
        self._fd = None

    @contextlib.contextmanager
    def shared(self, create: bool = False):
        with self._cond:
            while self._exclusive:
                self._cond.wait()
            if self._shared == 0:
                self._fd = self._flock(
                    fcntl.LOCK_SH if fcntl else 0, create)
            self._shared += 1
        try:
            yield
        finally:
            with self._cond:
                self._shared -= 1
                if self._shared == 0:
                    self._unlock()
                    self._cond.notify_all()

    @contextlib.contextmanager
    def exclusive(self, create: bool = False):
        with self._cond:
            while self._exclusive or self._shared:
                self._cond.wait()
            self._exclusive = True
            self._fd = self._flock(fcntl.LOCK_EX if fcntl else 0, create)
        try:
            yield
        finally:
            with self._cond:
                self._exclusive = False
                self._unlock()
                self._cond.notify_all()


class ArtifactStore:
    """One on-disk artifact store rooted at ``root``."""

    #: Bounded retry policy for transient I/O errors: a flaky NFS mount or
    #: a hiccuping disk gets a few chances, a genuinely broken path does
    #: not stall runs (total worst-case wait ~60ms).  ``ENOSPC`` is never
    #: retried -- a full disk does not heal in 60ms.
    IO_ATTEMPTS = 3
    IO_BACKOFF = 0.02

    #: Degradation policy: after this many *consecutive* failed writes
    #: (or a single ``ENOSPC``) the store turns read-only and skips
    #: writes, then re-probes after the backoff so a transiently full
    #: disk recovers to cached operation instead of staying degraded
    #: for the process lifetime.
    DEGRADE_THRESHOLD = 2
    DEGRADE_BACKOFF = 5.0

    def __init__(self, root, version: int = SCHEMA_VERSION) -> None:
        self.root = Path(root)
        self.version = version
        self.stats = StoreStats()
        self.last_fsck: Optional[FsckReport] = None
        self._io_warned = False
        self._write_failures = 0      # consecutive; any success resets
        self._read_only_until = 0.0   # monotonic deadline; 0 = healthy
        self._lock = _StoreLock(self.root)

    # -- paths ----------------------------------------------------------
    @property
    def versioned_root(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, kind: str, key: str) -> Path:
        return self.versioned_root / kind / f"{key}.pkl"

    # -- I/O resilience -------------------------------------------------
    def _warn_io(self, action: str, path: Path, exc: OSError) -> None:
        """Warn the first time this store instance degrades to uncached
        operation (once: a broken cache volume would otherwise emit one
        warning per artifact of a sweep).  A successful re-probe re-arms
        the warning so the *next* degradation is reported again."""
        if self._io_warned:
            return
        self._io_warned = True
        warnings.warn(
            f"artifact cache {action} failed at {path} after "
            f"{self.IO_ATTEMPTS} attempts ({exc!r}); continuing without "
            f"the cache for the affected artifacts (see `repro-clgp "
            f"cache stats`)",
            RuntimeWarning,
            stacklevel=4,
        )

    def _with_io_retry(self, operation):
        """Run ``operation`` with bounded retry-and-backoff on transient
        ``OSError``s.  ``FileNotFoundError`` passes straight through --
        a missing artifact is an ordinary miss, not an I/O fault -- and
        ``ENOSPC`` fails immediately (retrying a full disk just burns
        the backoff budget)."""
        attempt = 0
        while True:
            try:
                return operation()
            except FileNotFoundError:
                raise
            except OSError as exc:
                if getattr(exc, "errno", None) == errno.ENOSPC:
                    raise
                attempt += 1
                if attempt >= self.IO_ATTEMPTS:
                    raise
                self.stats.io_retries += 1
                time.sleep(self.IO_BACKOFF * (2 ** (attempt - 1)))

    def _note_write_failure(self, exc: OSError) -> None:
        """Account one abandoned write; flip to read-only on disk
        pressure (``ENOSPC`` immediately, anything else after
        ``DEGRADE_THRESHOLD`` consecutive failures)."""
        self._write_failures += 1
        if (self._write_failures >= self.DEGRADE_THRESHOLD
                or getattr(exc, "errno", None) == errno.ENOSPC):
            self._read_only_until = time.monotonic() + self.DEGRADE_BACKOFF

    def read_only(self) -> bool:
        """Whether the store is currently degraded to read-only (writes
        are skipped until the re-probe backoff expires)."""
        return time.monotonic() < self._read_only_until

    # -- raw bytes ------------------------------------------------------
    def get_bytes(self, kind: str, key: str) -> Optional[bytes]:
        """The stored payload, or ``None`` on a miss / unreadable or
        corrupted file (corrupted files are deleted and recomputed).

        Every payload is digest-framed at write time, so corruption of
        *any* kind -- truncation, bit rot, a torn page -- is detected
        here, before zlib or pickle ever touch the bytes.
        """
        faults.io_pause()
        path = self.path_for(kind, key)
        try:
            with self._lock.shared():
                faults.maybe_io_error("read", kind, key)
                framed = self._with_io_retry(path.read_bytes)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            self.stats.read_errors += 1
            self.stats.misses += 1
            self._warn_io("read", path, exc)
            return None
        payload = unframe_digest(framed)
        if payload is None:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.discard(kind, key)
            return None
        try:
            data = zlib.decompress(payload)
        except zlib.error:
            # Unreachable for on-disk damage (the frame catches that);
            # kept as a backstop for a buggy writer.
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.discard(kind, key)
            return None
        self.stats.hits += 1
        # Refresh the mtime so it doubles as an LRU clock: `gc` evicts the
        # artifacts that have gone the longest without being read.  A gc
        # pass that raced this refresh re-stats before unlinking.
        with contextlib.suppress(OSError):
            os.utime(path)
        return data

    #: zlib level 3: checkpoint pickles shrink ~10x while staying well
    #: under the cost of recomputing anything the store holds.
    _COMPRESSION_LEVEL = 3

    def put_bytes(self, kind: str, key: str, data: bytes) -> None:
        """Atomically publish ``data``; concurrent writers are safe (all
        produce identical content for one key, and ``os.replace`` is
        atomic), so pool workers may publish the same artifact freely.

        A write that keeps failing after retries is *dropped* -- counted
        in ``stats.write_errors`` and warned about once -- because a
        store write is always an optimisation: the caller already holds
        the computed artifact.  Repeated failures (or one ``ENOSPC``)
        degrade the store to read-only; after ``DEGRADE_BACKOFF`` the
        next write re-probes the path and, on success, restores cached
        operation.
        """
        if self._read_only_until:
            if time.monotonic() < self._read_only_until:
                self.stats.skipped_writes += 1
                return
            self.stats.reprobes += 1
        faults.io_pause()
        path = self.path_for(kind, key)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        payload = frame_digest(zlib.compress(data, self._COMPRESSION_LEVEL))
        payload = faults.corrupt_artifact(kind, key, payload)
        crashed = False

        def publish():
            nonlocal crashed
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            if faults.maybe_write_crash(kind, key):
                # Injected process death between the temp write and the
                # rename: the temp file stays behind, exactly the litter
                # `gc`/`fsck` must be able to reap.
                crashed = True
                return
            os.replace(tmp, path)

        try:
            with self._lock.shared(create=True):
                faults.maybe_io_error("write", kind, key)
                self._with_io_retry(publish)
        except OSError as exc:
            self.stats.write_errors += 1
            self._note_write_failure(exc)
            self._warn_io("write", path, exc)
            with contextlib.suppress(OSError):
                tmp.unlink()
            return
        if crashed:
            self.stats.crashed_writes += 1
            return
        if self._read_only_until:
            # A successful re-probe: back to cached operation, and re-arm
            # the one-time warning for any future degradation.
            self.stats.recoveries += 1
            self._io_warned = False
        self._write_failures = 0
        self._read_only_until = 0.0
        self.stats.stores += 1

    def discard(self, kind: str, key: str) -> None:
        """Drop one artifact (used when a payload fails to deserialize)."""
        with contextlib.suppress(OSError):
            self.path_for(kind, key).unlink()

    # -- pickled objects ------------------------------------------------
    def get(self, kind: str, key: str):
        """Unpickle the stored artifact; corrupted files become misses."""
        data = self.get_bytes(kind, key)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception:
            # The digest frame proves the bytes are what the writer
            # published, so this is an incompatible pickle that escaped
            # the schema version: drop it and recompute.
            self.stats.corrupt += 1
            self.stats.hits -= 1
            self.stats.misses += 1
            self.discard(kind, key)
            return None

    def put(self, kind: str, key: str, obj) -> None:
        self.put_bytes(
            kind, key, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        )

    # -- maintenance ----------------------------------------------------
    def entries(self) -> Iterator[Tuple[str, Path]]:
        """Yield ``(kind, path)`` for every artifact of this schema version."""
        base = self.versioned_root
        if not base.is_dir():
            return
        for kind_dir in sorted(p for p in base.iterdir() if p.is_dir()):
            for path in sorted(kind_dir.glob("*.pkl")):
                yield kind_dir.name, path

    def describe(self) -> Dict[str, Tuple[int, int]]:
        """Per-kind ``(file count, total bytes)`` for the current schema."""
        summary: Dict[str, List[int]] = {}
        for kind, path in self.entries():
            entry = summary.setdefault(kind, [0, 0])
            entry[0] += 1
            entry[1] += path.stat().st_size
        return {kind: (count, size) for kind, (count, size) in summary.items()}

    def _version_dirs(self) -> List[Path]:
        """The store's ``v<N>`` schema directories (and nothing else: the
        root may be a pre-existing directory full of unrelated files --
        ``--cache-dir .`` must never make ``clear`` destructive)."""
        if not self.root.is_dir():
            return []
        return sorted(
            path for path in self.root.iterdir()
            if path.is_dir() and path.name.startswith("v")
            and path.name[1:].isdigit()
        )

    def clear(self) -> int:
        """Empty the store (every schema version); returns files removed.

        Only the store's own ``v<N>`` directories are touched; unrelated
        content of the root directory is left alone.
        """
        removed = 0
        with self._lock.exclusive():
            for version_dir in self._version_dirs():
                removed += sum(1 for _ in version_dir.rglob("*.pkl"))
                shutil.rmtree(version_dir, ignore_errors=True)
        return removed

    def _reap_tmp(self, repair: bool = True) -> Tuple[int, int]:
        """Count (and with ``repair`` unlink) orphaned writer temp files.

        Only safe under the exclusive lock: live writers hold the shared
        lock across the whole temp-write + rename publish, so any
        ``.tmp`` file visible here was stranded by a dead process.
        """
        files = size = 0
        for version_dir in self._version_dirs():
            for tmp in version_dir.rglob(".*.tmp"):
                try:
                    tmp_size = tmp.stat().st_size
                    if repair:
                        tmp.unlink()
                except OSError:
                    continue
                files += 1
                size += tmp_size
        return files, size

    def gc(self, max_size_bytes: int) -> GcReport:
        """Reap orphaned temp files, then evict least-recently-used
        artifacts until the store fits ``max_size_bytes``.

        Reads refresh an artifact's mtime (see :meth:`get_bytes`), so
        mtime order is LRU order.  Every schema version is considered --
        orphaned versions are never *used*, so their stale mtimes put
        them first in line.  Eviction is only ever a cache miss followed
        by a recompute, never a wrong result.  An artifact whose mtime
        was refreshed by a concurrent read between the scan and its
        eviction turn is *not* evicted -- it just became the most
        recently used file in the store, so unlinking it would evict
        exactly the wrong artifact.  The whole pass runs under the
        exclusive store lock, so no other *process* is mid-read either.
        """
        if max_size_bytes < 0:
            raise ValueError("max_size_bytes must be >= 0")
        with self._lock.exclusive():
            tmp_files, tmp_bytes = self._reap_tmp()
            entries, total = self._gc_scan()
            removed_files, removed_bytes = self._gc_evict(
                entries, total, max_size_bytes)
        return GcReport(removed_files, removed_bytes, tmp_files, tmp_bytes)

    def _gc_scan(self) -> Tuple[List[Tuple[float, str, Path, int]], int]:
        """LRU-ordered ``(mtime, name, path, size)`` entries + total bytes."""
        entries: List[Tuple[float, str, Path, int]] = []
        total = 0
        for version_dir in self._version_dirs():
            for path in version_dir.rglob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                # str(path) breaks mtime ties deterministically.
                entries.append((stat.st_mtime, str(path), path,
                                stat.st_size))
                total += stat.st_size
        entries.sort()
        return entries, total

    def _gc_evict(
        self,
        entries: List[Tuple[float, str, Path, int]],
        total: int,
        max_size_bytes: int,
    ) -> Tuple[int, int]:
        """Eviction pass over a scan (separate from :meth:`_gc_scan` so
        the scan/evict race with a concurrent read-refresh is testable)."""
        removed_files = removed_bytes = 0
        for scanned_mtime, _name, path, size in entries:
            if total <= max_size_bytes:
                break
            try:
                current_mtime = path.stat().st_mtime
            except OSError:
                # Already gone (another process evicted it): it no
                # longer occupies space, so it counts toward the target
                # without being credited to this pass.
                total -= size
                continue
            if current_mtime > scanned_mtime:
                # Refreshed by a concurrent read since the scan: the
                # artifact is now MRU, not LRU -- skip it this round.
                continue
            with contextlib.suppress(OSError):
                path.unlink()
                removed_files += 1
                removed_bytes += size
                # Only count space as reclaimed when the unlink succeeded,
                # so a locked/read-only file cannot end eviction early.
                total -= size
        return removed_files, removed_bytes

    def fsck(self, repair: bool = False) -> FsckReport:
        """Audit the store: verify every current-version artifact's
        digest frame (and that it decompresses), find orphaned writer
        temp files and other-version leftovers.  With ``repair``,
        unlink everything damaged or stranded.

        Runs under the exclusive store lock, so no live writer's temp
        file can be mistaken for litter and no reader can race a repair
        unlink.  The universal digest frame (schema v4) means the audit
        never has to unpickle anything.
        """
        report = FsckReport(repaired=repair)
        with self._lock.exclusive():
            for kind, path in self.entries():
                entry = report.per_kind.setdefault(kind, [0, 0])
                try:
                    framed = path.read_bytes()
                except OSError:
                    framed = None
                payload = unframe_digest(framed)
                intact = payload is not None
                if intact:
                    try:
                        zlib.decompress(payload)
                    except zlib.error:
                        intact = False
                if intact:
                    entry[0] += 1
                else:
                    entry[1] += 1
                    if repair:
                        with contextlib.suppress(OSError):
                            path.unlink()
            report.tmp_files, report.tmp_bytes = self._reap_tmp(repair=repair)
            for version_dir in self._version_dirs():
                if version_dir.name == f"v{self.version}":
                    continue
                report.other_version_files += sum(
                    1 for _ in version_dir.rglob("*.pkl"))
        self.last_fsck = report
        return report

    def total_size(self) -> int:
        """Total bytes held by every schema version of the store,
        including stranded writer temp files (they occupy disk just the
        same -- ``gc`` reaps them)."""
        size = 0
        for version_dir in self._version_dirs():
            for path in version_dir.rglob("*"):
                with contextlib.suppress(OSError):
                    if path.is_file():
                        size += path.stat().st_size
        return size

    def orphaned(self) -> Tuple[int, int]:
        """``(files, bytes)`` held by *other* schema versions' directories
        (left behind by a SCHEMA_VERSION bump; reclaimed by :meth:`clear`)."""
        files = size = 0
        for version_dir in self._version_dirs():
            if version_dir.name == f"v{self.version}":
                continue
            for path in version_dir.rglob("*.pkl"):
                files += 1
                size += path.stat().st_size
        return files, size

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def __bool__(self) -> bool:
        """Always truthy: an *empty* store is still a store (len() would
        otherwise make ``if store:`` silently mean ``if non-empty``, at
        the cost of a directory walk)."""
        return True


# ----------------------------------------------------------------------
# process-wide store resolution
# ----------------------------------------------------------------------
_override_dir: Optional[str] = None
_override_enabled: Optional[bool] = None
_active: Optional[ArtifactStore] = None


def configure(cache_dir: Optional[str] = None,
              enabled: Optional[bool] = None) -> None:
    """Set process-wide overrides (the CLI's ``--cache-dir``/``--no-cache``).

    ``None`` leaves the respective setting untouched (environment
    variables and defaults keep deciding).
    """
    global _override_dir, _override_enabled, _active
    if cache_dir is not None:
        _override_dir = str(cache_dir)
        _active = None
    if enabled is not None:
        _override_enabled = enabled


def snapshot_configuration() -> tuple:
    """The current process-wide overrides, for :func:`restore_configuration`
    (``repro.api.Session`` scopes its cache policy with these)."""
    return _override_dir, _override_enabled


def restore_configuration(snapshot: tuple) -> None:
    """Reinstate overrides captured by :func:`snapshot_configuration`."""
    global _override_dir, _override_enabled, _active
    _override_dir, _override_enabled = snapshot
    _active = None


def reset_configuration() -> None:
    """Drop every override (tests; environment/defaults apply again)."""
    global _override_dir, _override_enabled, _active
    _override_dir = None
    _override_enabled = None
    _active = None


def cache_enabled() -> bool:
    if _override_enabled is not None:
        return _override_enabled
    return os.environ.get(ENV_CACHE_DISABLE, "").strip().lower() not in _TRUTHY


def resolved_cache_dir() -> str:
    return _override_dir or os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR


def get_store() -> ArtifactStore:
    """The store at the currently-configured root (even when disabled --
    ``cache path``/``cache clear`` still need to address it)."""
    global _active
    root = resolved_cache_dir()
    if _active is None or str(_active.root) != root:
        _active = ArtifactStore(root)
    return _active


def active_store() -> Optional[ArtifactStore]:
    """The store to read/write artifacts through, or ``None`` when caching
    is disabled (callers then recompute everything in-process)."""
    return get_store() if cache_enabled() else None


@contextlib.contextmanager
def temporary_cache_dir(path, enabled: bool = True):
    """Context manager routing the process-wide store at ``path`` (tests
    and the cold-vs-warm benchmark)."""
    global _override_dir, _override_enabled, _active
    saved = (_override_dir, _override_enabled, _active)
    _override_dir = str(path)
    _override_enabled = enabled
    _active = None
    try:
        yield get_store()
    finally:
        _override_dir, _override_enabled, _active = saved
