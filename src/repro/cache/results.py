"""Full-run result caching: persist complete ``SimulationResult``\\ s.

A full (non-sampled) simulation is deterministic given its configuration,
workload and instruction budget, so its complete
:class:`~repro.simulator.stats.SimulationResult` is itself an artifact:
any later invocation of the same (config, workload, budget) replays the
stored result byte-identically instead of resimulating.  This is the
non-sampled counterpart of the sampled runner's per-interval measurement
artifacts -- with it, *every* simulation path replays warm.

Policy
------

Result replay is **on by default whenever the artifact cache is
enabled** and separately switchable, because replaying a final result is
a stronger policy than replaying intermediate artifacts (there is no
simulation left to observe):

* ``REPRO_RESULT_CACHE_DISABLE=1`` -- environment-level opt-out,
* :func:`configure_result_cache` -- process-wide override (the CLI's
  ``--no-result-cache``; ``repro.api.ExecutionOptions(result_cache=...)``
  scopes it per submission),
* disabling the artifact cache itself (``--no-cache``) disables result
  replay with it.

Keys bind the full configuration (:func:`repro.cache.keys.stable_repr`),
the workload identity (name + generator seed) and the resolved
instruction budget; the store's ``SCHEMA_VERSION`` guards format
evolution, and the store's universal digest frame (schema v4) rejects a
torn or bit-rotted result file before it can replay as a wrong result.
Hits/misses/stores are counted in :data:`RESULT_CACHE_STATS`
so callers (``repro.api.RunHandle`` progress events, tests) can report
result replays distinctly from ordinary artifact-store hits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from .keys import content_key, stable_repr
from .store import active_store

#: Artifact kind under which full-run results are stored.
RESULT_KIND = "result"

#: Environment-level opt-out (the CLI flag maps onto
#: :func:`configure_result_cache`).
ENV_RESULT_CACHE_DISABLE = "REPRO_RESULT_CACHE_DISABLE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


@dataclass
class ResultCacheStats:
    """Per-process counters of full-run result replay traffic."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0   #: payloads that loaded but failed the sanity check


#: Process-wide counters (reset by tests via :func:`reset_result_stats`).
RESULT_CACHE_STATS = ResultCacheStats()

_override_enabled: Optional[bool] = None


def configure_result_cache(enabled: Optional[bool]) -> None:
    """Process-wide override; ``None`` lets the environment/default decide."""
    global _override_enabled
    _override_enabled = enabled


def result_cache_enabled() -> bool:
    """Whether full-run results may be replayed instead of resimulated."""
    if _override_enabled is not None:
        return _override_enabled
    return os.environ.get(
        ENV_RESULT_CACHE_DISABLE, ""
    ).strip().lower() not in _TRUTHY


def snapshot_result_configuration() -> Optional[bool]:
    """The current override, for :func:`restore_result_configuration`."""
    return _override_enabled


def restore_result_configuration(snapshot: Optional[bool]) -> None:
    global _override_enabled
    _override_enabled = snapshot


def reset_result_stats() -> None:
    """Zero the per-process counters (tests)."""
    RESULT_CACHE_STATS.hits = 0
    RESULT_CACHE_STATS.misses = 0
    RESULT_CACHE_STATS.stores = 0
    RESULT_CACHE_STATS.invalid = 0


def result_cache_hits() -> int:
    """Current hit counter (the runner reports per-task deltas from it)."""
    return RESULT_CACHE_STATS.hits


def result_key(config, workload_name: str, workload_seed: int,
               total_instructions: int) -> str:
    """Content key of one full run's result."""
    return content_key(
        "sim-result", stable_repr(config),
        workload_name, workload_seed, total_instructions,
    )


def load_cached_result(config, workload_name: str, workload_seed: int,
                       total_instructions: int):
    """The persisted :class:`SimulationResult` for this run, or ``None``.

    ``None`` both on a miss and whenever result replay is disabled (the
    caller then simulates normally).  Only the workload *identity* is
    needed, so a hit never has to build the synthetic program at all.
    """
    if not result_cache_enabled():
        return None
    store = active_store()
    if store is None:
        return None
    from ..simulator.stats import SimulationResult

    key = result_key(config, workload_name, workload_seed,
                     total_instructions)
    loaded = store.get(RESULT_KIND, key)
    if isinstance(loaded, SimulationResult) \
            and loaded.workload == workload_name:
        RESULT_CACHE_STATS.hits += 1
        return loaded
    if loaded is not None:
        # Unpickled fine but is not a plausible result for this key
        # (foreign type or workload): drop it so it cannot shadow the
        # recomputed artifact forever.
        RESULT_CACHE_STATS.invalid += 1
        store.discard(RESULT_KIND, key)
    RESULT_CACHE_STATS.misses += 1
    return None


def store_result(config, workload_name: str, workload_seed: int,
                 total_instructions: int, result) -> None:
    """Publish one full run's result (no-op when replay is disabled)."""
    if not result_cache_enabled():
        return
    store = active_store()
    if store is None:
        return
    store.put(RESULT_KIND, result_key(
        config, workload_name, workload_seed, total_instructions), result)
    RESULT_CACHE_STATS.stores += 1
