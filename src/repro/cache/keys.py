"""Stable content keys for on-disk artifacts.

Artifacts are addressed by a SHA-256 digest of a *canonical textual
serialization* of their key material.  The serialization is designed to
be stable where it matters for a cache that outlives processes:

* independent of ``PYTHONHASHSEED`` (no use of ``hash()``, no reliance
  on set/dict iteration order -- mappings and sets are sorted),
* independent of dataclass *field order* (fields are serialized as
  sorted ``name=value`` pairs, so reordering a configuration dataclass
  does not silently alias old artifacts),
* sensitive to dataclass identity and every field value, so any config
  evolution that changes content produces a different key, and
* restricted to plain data (dataclasses, mappings, sequences, sets,
  enums, scalars) -- anything else raises ``TypeError`` instead of
  falling back to an unstable ``repr``.

Schema-level evolution (new artifact formats, changed pickling) is
handled separately by :data:`repro.cache.store.SCHEMA_VERSION`, which
versions the on-disk directory layout; these keys only need to identify
*content* within one schema.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib

#: Separator between the parts of a composite key (unit separator: it
#: cannot appear in the canonical token of any supported value).
_PART_SEPARATOR = "\x1f"


def stable_repr(value: object) -> str:
    """Canonical, process-independent textual form of ``value``."""
    if isinstance(value, enum.Enum):
        return f"enum:{type(value).__qualname__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = ",".join(
            f"{name}={token}"
            for name, token in sorted(
                (f.name, stable_repr(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            )
        )
        return f"dc:{cls.__module__}.{cls.__qualname__}{{{fields}}}"
    if isinstance(value, dict):
        items = ",".join(
            f"{k}:{v}"
            for k, v in sorted(
                (stable_repr(key), stable_repr(val))
                for key, val in value.items()
            )
        )
        return f"{{{items}}}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(stable_repr(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "s[" + ",".join(sorted(stable_repr(v) for v in value)) + "]"
    if isinstance(value, bool) or value is None:
        return repr(value)
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        # repr() of a float is the shortest round-tripping decimal form,
        # identical across processes and platforms for equal values.
        return f"f{value!r}"
    if isinstance(value, str):
        return "u" + repr(value)
    if isinstance(value, bytes):
        return "b" + repr(value)
    raise TypeError(
        f"cannot build a stable cache key from {type(value).__name__!r} "
        f"value {value!r}"
    )


def content_key(*parts: object) -> str:
    """SHA-256 hex digest of the canonical serialization of ``parts``."""
    canonical = _PART_SEPARATOR.join(stable_repr(part) for part in parts)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
