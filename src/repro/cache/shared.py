"""Workload-aware pickling for simulator checkpoints.

A :class:`~repro.simulator.simulator.SimulatorCheckpoint` deliberately
*shares* the immutable workload objects (profile, CFG, basic-block
dictionary, the memoised correct-path block stream / compiled trace)
instead of copying them -- that is what makes snapshots cheap.  Pickling
such a checkpoint naively would drag the whole program description into
every artifact file and, worse, a loaded checkpoint would reference
*private copies* of those objects instead of the live workload's.

This module keeps the sharing across the process boundary with the
pickle ``persistent_id`` protocol: the workload-owned objects are
replaced by small named tokens on the way out and resolved against the
*live* workload on the way in.  Everything those objects hold is
deterministic per workload profile (append-only block streams, memoised
dictionaries), so resolving against a freshly-built workload yields a
bit-identical continuation.
"""

from __future__ import annotations

import io
import pickle
from typing import Dict

from ..workloads.trace import BlockStream, ProgramWalker, Workload


class SharedObjectUnavailable(Exception):
    """A checkpoint references a workload object the live process lacks
    (e.g. a compiled trace that is not attached); treat as a cache miss."""


#: Columnar-array attributes of a compiled trace; oracles alias them
#: directly (hot path), so they are tokenized individually as well.
_TRACE_ARRAYS = ("addr", "size", "kind", "taken", "next_addr",
                 "terminator_addr")


def _token_map(workload: Workload) -> Dict[int, str]:
    mapping = {
        id(workload): "workload",
        id(workload.profile): "profile",
        id(workload.cfg): "cfg",
        id(workload.bbdict): "bbdict",
    }
    if workload._block_stream is not None:
        mapping[id(workload._block_stream)] = "block_stream"
    trace = workload._compiled_trace
    if trace is not None:
        mapping[id(trace)] = "compiled_trace"
        for name in _TRACE_ARRAYS:
            mapping[id(getattr(trace, name))] = f"trace:{name}"
    return mapping


def dumps_with_workload(obj, workload: Workload) -> bytes:
    """Pickle ``obj`` with ``workload``-owned objects tokenized out."""
    mapping = _token_map(workload)
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.persistent_id = lambda candidate: mapping.get(id(candidate))
    pickler.dump(obj)
    return buffer.getvalue()


def loads_with_workload(data: bytes, workload: Workload):
    """Unpickle, resolving tokens against the live ``workload``.

    Raises :class:`SharedObjectUnavailable` when the payload references a
    compiled trace and the live workload has none attached (callers treat
    that as a miss and recompute).
    """

    def resolve(token: str):
        if token == "workload":
            return workload
        if token == "profile":
            return workload.profile
        if token == "cfg":
            return workload.cfg
        if token == "bbdict":
            return workload.bbdict
        if token == "block_stream":
            if workload._block_stream is None:
                workload._block_stream = BlockStream(
                    ProgramWalker(workload.cfg, seed=workload.profile.seed)
                )
            return workload._block_stream
        if token == "compiled_trace" or token.startswith("trace:"):
            trace = workload._compiled_trace
            if trace is None:
                raise SharedObjectUnavailable(
                    "checkpoint references a compiled trace that is not "
                    "attached to the live workload"
                )
            if token == "compiled_trace":
                return trace
            name = token[len("trace:"):]
            if name not in _TRACE_ARRAYS:
                raise SharedObjectUnavailable(
                    f"unknown compiled-trace column {name!r}")
            return getattr(trace, name)
        raise SharedObjectUnavailable(f"unknown shared-object token {token!r}")

    unpickler = pickle.Unpickler(io.BytesIO(data))
    unpickler.persistent_load = resolve
    return unpickler.load()
