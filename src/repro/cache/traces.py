"""Persistence glue for compiled correct-path traces.

Budgets are rounded up to power-of-two buckets so a workload accumulates
a handful of trace artifacts at most (one per magnitude), not one per
exact instruction budget; the bucket floor comfortably covers the
default functional warm-up (<= 200k instructions), which is the deepest
any single oracle of a typical run reads.

Trace payloads are stored through the ordinary artifact store, so they
inherit its digest framing (schema v4): a corrupted compiled trace is a
miss-and-recompile, never a silently wrong instruction stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..workloads.trace import CompiledTrace, Workload, compile_trace
from .keys import content_key
from .store import active_store

#: Instructions beyond the requested budget compiled into the prefix, so
#: a final stream that straddles the budget stays inside the arrays.
TRACE_MARGIN = 4096

#: Smallest trace bucket (2**18 = 262144 instructions: the default
#: warm-up budget cap of 200k plus margin fits in the floor bucket).
MIN_TRACE_BUCKET = 1 << 18

#: Per-process compiled traces, keyed by (workload name, seed, bucket) --
#: one load/compile per process however many tasks share the workload.
_TRACES: Dict[Tuple[str, int, int], CompiledTrace] = {}


def trace_bucket(instructions: int) -> int:
    """Power-of-two bucket covering ``instructions`` plus the margin."""
    needed = instructions + TRACE_MARGIN
    bucket = MIN_TRACE_BUCKET
    while bucket < needed:
        bucket <<= 1
    return bucket


def ensure_compiled_trace(
    workload: Workload, instructions: int
) -> Optional[CompiledTrace]:
    """Attach a compiled trace covering ``instructions`` to ``workload``.

    No-op (returns ``None``) when caching is disabled.  Otherwise the
    trace is taken from the per-process cache, loaded from the artifact
    store, or compiled once and published for every later process.
    """
    store = active_store()
    if store is None:
        return None
    existing = workload._compiled_trace
    if (existing is not None
            and existing.compiled_instructions >= instructions + TRACE_MARGIN):
        return existing
    bucket = trace_bucket(instructions)
    memo_key = (workload.profile.name, workload.profile.seed, bucket)
    trace = _TRACES.get(memo_key)
    if trace is None:
        key = content_key(
            "compiled-trace",
            workload.profile.name, workload.profile.seed, bucket,
        )
        trace = store.get("trace", key)
        if (not isinstance(trace, CompiledTrace)
                or (trace.name, trace.seed) != memo_key[:2]
                or trace.compiled_instructions < bucket):
            trace = compile_trace(workload, bucket)
            store.put("trace", key, trace)
        _TRACES[memo_key] = trace
    workload.attach_compiled_trace(trace)
    return trace


def clear_trace_cache() -> None:
    """Drop the per-process compiled-trace cache (tests, benchmarks)."""
    _TRACES.clear()
