"""Prestage buffer: the heart of Cache Line Guided Prestaging.

A prestage buffer entry has four fields (paper section 3.2.2):

* the prefetched I-cache line (tags only in this model),
* a **consumers counter**, initially 0, counting how many CLTQ entries will
  fetch from this line,
* a **valid bit**, set when the line arrives from the cache hierarchy,
* an **LRU field** used for replacement.

Replacement differs fundamentally from FDP's prefetch buffer: an entry may
be replaced *only* while its consumers counter is zero, i.e. only when the
front-end knows no in-flight predicted fetch will need it.  Consuming a
line from the buffer decrements the counter instead of freeing the entry,
so hot lines stay resident exactly as long as the predicted path keeps
referencing them, and they are **not** copied back into the I-cache.

On a branch misprediction the CLTQ is flushed and all consumers counters
are reset to zero (every entry becomes replaceable), but valid lines stay
usable until they are actually overwritten by prefetches from the new
path.
"""

from __future__ import annotations

from typing import List, Optional

from .prefetch_buffer import PreBufferBase, PreBufferEntry


class PrestageBuffer(PreBufferBase):
    """Fully-associative buffer with consumers-counter-based replacement."""

    def __init__(self, entries: int, latency: int = 1, pipelined: bool = False):
        super().__init__(entries, latency=latency, pipelined=pipelined)
        self.consumer_increments = 0
        self.consumer_decrements = 0
        self.counter_resets = 0

    # -- replacement ------------------------------------------------------
    def replaceable_entries(self) -> List[PreBufferEntry]:
        """Entries with no outstanding consumers, LRU first.

        Note that an in-flight entry (valid bit unset) whose consumers have
        been reset by a misprediction may be replaced; the late-arriving
        line is simply dropped.
        """
        free = [e for e in self._entries.values() if e.consumers == 0]
        return sorted(free, key=lambda e: e.lru_stamp)

    def _victim(self):
        best = None
        best_stamp = None
        for e in self._entries.values():
            if e.consumers:
                continue
            if best_stamp is None or e.lru_stamp < best_stamp:
                best_stamp = e.lru_stamp
                best = e
        return best

    # -- CLGP bookkeeping ---------------------------------------------------
    def add_consumer(self, entry: PreBufferEntry) -> None:
        """A CLTQ entry now references this line (prefetch request found the
        line already present: no new prefetch, lifetime extended)."""
        entry.consumers += 1
        self.consumer_increments += 1
        self.touch(entry)

    def allocate_for_prefetch(self, line_addr: int) -> Optional[PreBufferEntry]:
        """Allocate an entry for a new prefetch with one initial consumer.

        Returns ``None`` when every entry still has outstanding consumers.
        """
        entry = self.allocate(line_addr)
        if entry is None:
            return None
        entry.consumers = 1
        entry.available = False
        self.consumer_increments += 1
        return entry

    def consume(self, entry: PreBufferEntry) -> None:
        """The fetch unit consumed this line for one CLTQ entry: decrement
        the consumers counter (never below zero) and refresh LRU."""
        if entry.consumers > 0:
            entry.consumers -= 1
            self.consumer_decrements += 1
        self.touch(entry)

    def reset_consumers(self) -> None:
        """Branch misprediction: every consumers counter drops to zero, so
        all entries become candidates for prefetches along the new path."""
        for entry in self._entries.values():
            if entry.consumers:
                entry.consumers = 0
        self.counter_resets += 1

    # -- invariants (used by the property-based tests) ---------------------
    def total_consumers(self) -> int:
        return sum(e.consumers for e in self._entries.values())

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is violated."""
        assert len(self._entries) <= self.capacity, "capacity exceeded"
        for entry in self._entries.values():
            assert entry.consumers >= 0, "negative consumers counter"
            if entry.valid:
                assert entry.ready_cycle is not None, "valid entry without ready cycle"
