"""Fetch Target Queue (FTQ) -- fetch-block granularity (FDP / baseline).

The FTQ decouples the branch predictor from the I-cache: the predictor
deposits fetch blocks, the fetch stage consumes them.  Capacity is counted
in fetch blocks (8 in the paper's Table 2).  The fetch stage works at
cache-line granularity, so the head block is expanded lazily into
:class:`~repro.frontend.fetch_block.FetchLineRequest` objects.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..frontend.fetch_block import FetchBlock, FetchLineRequest


class FetchTargetQueue:
    """Bounded queue of fetch blocks with lazy per-line expansion."""

    def __init__(self, capacity_blocks: int = 8, line_size: int = 64):
        if capacity_blocks < 1:
            raise ValueError("FTQ needs capacity for at least one block")
        self.capacity_blocks = capacity_blocks
        self.line_size = line_size
        self._blocks: Deque[FetchBlock] = deque()
        self._head_lines: Deque[FetchLineRequest] = deque()
        self.enqueued_blocks = 0
        self.dropped_blocks = 0

    # -- predictor side ----------------------------------------------------
    def has_space(self) -> bool:
        return len(self._blocks) + (1 if self._head_lines else 0) < self.capacity_blocks

    def push(self, block: FetchBlock) -> bool:
        """Insert a fetch block; returns False (and drops it) when full."""
        if not self.has_space():
            self.dropped_blocks += 1
            return False
        self._blocks.append(block)
        self.enqueued_blocks += 1
        return True

    # -- fetch side ---------------------------------------------------------
    def _refill_head(self) -> None:
        if not self._head_lines and self._blocks:
            block = self._blocks.popleft()
            self._head_lines.extend(block.line_requests(self.line_size))

    def peek_line(self) -> Optional[FetchLineRequest]:
        self._refill_head()
        return self._head_lines[0] if self._head_lines else None

    def pop_line(self) -> Optional[FetchLineRequest]:
        self._refill_head()
        return self._head_lines.popleft() if self._head_lines else None

    # -- prefetcher side ------------------------------------------------------
    def pending_blocks(self) -> List[FetchBlock]:
        """Blocks currently queued (head block excluded once expansion
        started); used by FDP to enqueue prefetch candidates."""
        return list(self._blocks)

    # -- global ------------------------------------------------------------
    def flush(self) -> None:
        self._blocks.clear()
        self._head_lines.clear()

    @property
    def occupancy_blocks(self) -> int:
        return len(self._blocks) + (1 if self._head_lines else 0)

    def __len__(self) -> int:
        return self.occupancy_blocks

    def __bool__(self) -> bool:
        return bool(self._blocks or self._head_lines)
