"""Core contribution: fetch engines (baseline, FDP, CLGP) and their parts."""

from .baseline import BaselineEngine
from .classic_prefetchers import NextNLineEngine, TargetLineEngine
from .clgp import CLGPEngine
from .cltq import CacheLineTargetQueue
from .engine import FetchEngine, FetchEngineConfig, FetchStats
from .fdp import FDPEngine
from .filtering import EnqueueCacheProbeFilter, NullFilter, make_filter
from .ftq import FetchTargetQueue
from .prefetch_buffer import PreBufferEntry, PrefetchBuffer
from .prestage_buffer import PrestageBuffer

__all__ = [
    "BaselineEngine",
    "CacheLineTargetQueue",
    "CLGPEngine",
    "EnqueueCacheProbeFilter",
    "FDPEngine",
    "FetchEngine",
    "FetchEngineConfig",
    "FetchStats",
    "FetchTargetQueue",
    "NextNLineEngine",
    "NullFilter",
    "PreBufferEntry",
    "PrefetchBuffer",
    "PrestageBuffer",
    "TargetLineEngine",
    "make_filter",
]
