"""Cache Line Target Queue (CLTQ) -- cache-line granularity (CLGP).

"Before entering the fetch queue, fetch blocks are divided into fetch
cache lines, and each fetch cache line is stored in a different fetch
queue entry."  Each entry carries the *prefetched bit* (has CLGP already
processed it?) and the *occupied bit* (does it still hold a line awaiting
fetch?).

Capacity accounting follows the paper: the queue "can hold up to 8 fetch
blocks" -- with CLGP each block occupies several entries, but both FTQ and
CLTQ hold the same amount of predicted control flow so both mechanisms see
the same prefetch opportunities.  We therefore bound the number of
*resident fetch blocks*, not the raw entry count.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from ..frontend.fetch_block import FetchBlock, FetchLineRequest


class CacheLineTargetQueue:
    """Bounded (in fetch blocks) queue of per-line fetch requests."""

    def __init__(self, capacity_blocks: int = 8, line_size: int = 64):
        if capacity_blocks < 1:
            raise ValueError("CLTQ needs capacity for at least one block")
        self.capacity_blocks = capacity_blocks
        self.line_size = line_size
        self._entries: Deque[FetchLineRequest] = deque()
        #: Scan acceleration for the CLGP prestaging algorithm: entries in
        #: queue order whose 'prefetched bit' may still be unset.  Stale
        #: references (prefetched, or popped by the fetch stage) are lazily
        #: dropped from the front, making the per-cycle scan O(window)
        #: instead of O(queue length).
        self._unprefetched: Deque[FetchLineRequest] = deque()
        self._resident_blocks = 0
        self.enqueued_blocks = 0
        self.enqueued_lines = 0
        self.dropped_blocks = 0

    # -- predictor side ----------------------------------------------------
    def has_space(self) -> bool:
        return self._resident_blocks < self.capacity_blocks

    def push_block(self, block: FetchBlock) -> bool:
        """Split ``block`` into fetch cache lines and append them."""
        if not self.has_space():
            self.dropped_blocks += 1
            return False
        requests = block.line_requests(self.line_size)
        self._entries.extend(requests)
        self._unprefetched.extend(requests)
        self._resident_blocks += 1
        self.enqueued_blocks += 1
        self.enqueued_lines += len(requests)
        # Remember how many entries belong to this block so residency can be
        # decremented when its last line is consumed.
        block.cltq_lines_remaining = len(requests)
        return True

    # -- fetch side ----------------------------------------------------------
    def peek_line(self) -> Optional[FetchLineRequest]:
        return self._entries[0] if self._entries else None

    def pop_line(self) -> Optional[FetchLineRequest]:
        if not self._entries:
            return None
        request = self._entries.popleft()
        request.occupied = False
        block = request.block
        remaining = block.cltq_lines_remaining - 1
        block.cltq_lines_remaining = remaining
        if remaining <= 0:
            self._resident_blocks = max(0, self._resident_blocks - 1)
        return request

    # -- prefetcher (CLGP) side -----------------------------------------------
    def unprefetched_entries(self, limit: Optional[int] = None) -> List[FetchLineRequest]:
        """Entries whose 'prefetched bit' is still unset, in queue order."""
        out: List[FetchLineRequest] = []
        for request in self._entries:
            if not request.prefetched:
                out.append(request)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def iter_entries(self) -> Iterable[FetchLineRequest]:
        return iter(self._entries)

    @staticmethod
    def _is_stale(request: FetchLineRequest) -> bool:
        """A pending-scan reference no longer worth examining: already
        prefetched, or popped by the fetch stage."""
        return request.prefetched or not request.occupied

    def next_unprefetched(self) -> Optional[FetchLineRequest]:
        """Head-most queued entry with an unset 'prefetched bit' (stale
        scan references are dropped along the way)."""
        pending = self._unprefetched
        while pending:
            request = pending[0]
            if self._is_stale(request):
                pending.popleft()
                continue
            return request
        return None

    def peek_unprefetched(self) -> Optional[FetchLineRequest]:
        """Read-only :meth:`next_unprefetched`: same entry the next scan
        would examine, with no side effects (stale references are skipped,
        not dropped).  Used by the event loop's quiescence check."""
        for request in self._unprefetched:
            if not self._is_stale(request):
                return request
        return None

    def mark_scanned(self, request: FetchLineRequest) -> None:
        """The prestaging scan resolved this entry: set its 'prefetched
        bit' and drop it from the pending-scan order."""
        request.prefetched = True
        if self._unprefetched and self._unprefetched[0] is request:
            self._unprefetched.popleft()

    # -- global -----------------------------------------------------------------
    def flush(self) -> None:
        """Branch misprediction: discard every queued line."""
        self._entries.clear()
        self._unprefetched.clear()
        self._resident_blocks = 0

    @property
    def occupancy_lines(self) -> int:
        return len(self._entries)

    @property
    def occupancy_blocks(self) -> int:
        return self._resident_blocks

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)
