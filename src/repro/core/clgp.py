"""Cache Line Guided Prestaging (CLGP) -- the paper's contribution.

CLGP turns the prefetch buffer into the *primary* instruction supplier and
demotes the I-cache to an emergency role:

* the decoupling queue (CLTQ) holds individual **fetch cache lines**, each
  with a 'prefetched' bit;
* the CLGP algorithm walks the CLTQ: if a requested line is already in the
  prestage buffer its **consumers counter** is incremented (extending its
  lifetime) and no prefetch is issued; otherwise an entry with a zero
  consumers counter is allocated (LRU among the free ones) and a prefetch
  is launched -- **no filtering** against the I-cache is performed, because
  the whole point is to serve fetches from the one-cycle buffer even when
  the line is cached;
* when the fetch unit consumes a line from the prestage buffer the
  consumers counter is decremented; the line is **not** copied into the
  I-cache and the entry is only replaceable once its counter reaches zero;
* on a branch misprediction the CLTQ is flushed and all consumers counters
  reset; valid lines remain usable until overwritten;
* demand misses (mostly after mispredictions) fill the **emergency cache**:
  the L0 when present, otherwise the L1.

Ablation switches on :class:`~repro.core.engine.FetchEngineConfig` let the
benchmarks turn individual design decisions back into their FDP
counterparts (free-on-use replacement, copy-to-cache, filtering).
"""

from __future__ import annotations

from typing import Optional

from ..frontend.fetch_block import FetchBlock, FetchLineRequest
from ..memory.hierarchy import (
    SOURCE_L1,
    SOURCE_PREBUFFER,
    MemoryHierarchy,
)
from ..workloads.bbdict import BasicBlockDictionary
from .cltq import CacheLineTargetQueue
from .engine import FetchEngine, FetchEngineConfig
from .filtering import EnqueueCacheProbeFilter
from .prestage_buffer import PrestageBuffer


class CLGPEngine(FetchEngine):
    """Cache Line Guided Prestaging fetch engine."""

    name = "CLGP"
    has_prebuffer = True

    def __init__(
        self,
        config: FetchEngineConfig,
        hierarchy: MemoryHierarchy,
        bbdict: BasicBlockDictionary,
    ) -> None:
        super().__init__(config, hierarchy, bbdict)
        self.cltq = CacheLineTargetQueue(
            capacity_blocks=config.queue_capacity_blocks,
            line_size=hierarchy.line_size,
        )
        self.prestage_buffer = PrestageBuffer(
            entries=config.prebuffer_entries,
            latency=config.prebuffer_latency,
            pipelined=config.prebuffer_pipelined,
        )
        # Only used by the 'clgp_use_filtering' ablation.
        self._ablation_filter = EnqueueCacheProbeFilter()
        if hierarchy.has_l0:
            self.name = "CLGP+L0"

    # ------------------------------------------------------------------
    # queue management
    # ------------------------------------------------------------------
    def can_accept_block(self) -> bool:
        return self.cltq.has_space()

    def enqueue_block(self, block: FetchBlock, cycle: int) -> None:
        self.cltq.push_block(block)

    def _pop_next_line(self) -> Optional[FetchLineRequest]:
        return self.cltq.pop_line()

    def _peek_next_line(self) -> Optional[FetchLineRequest]:
        return self.cltq.peek_line()

    # ------------------------------------------------------------------
    # the CLGP prestaging algorithm
    # ------------------------------------------------------------------
    def prefetch_tick(self, cycle: int) -> None:
        cltq = self.cltq
        if not cltq._unprefetched:
            return
        issued = 0
        examined = 0
        while examined < self.config.clgp_scan_per_cycle:
            request = cltq.next_unprefetched()
            if request is None:
                break
            examined += 1
            line = request.line_addr

            entry = self.prestage_buffer.get(line)
            if entry is not None:
                # Already present (or in flight): extend its lifetime.
                self.prestage_buffer.add_consumer(entry)
                cltq.mark_scanned(request)
                self.stats.prefetch_source[SOURCE_PREBUFFER] += 1
                continue

            if self.config.clgp_use_filtering and not self._ablation_filter.should_prefetch(
                line, self.hierarchy
            ):
                cltq.mark_scanned(request)
                self.stats.prefetch_source[SOURCE_L1] += 1
                continue

            if issued >= self.config.prefetches_per_cycle:
                break
            new_entry = self.prestage_buffer.allocate_for_prefetch(line)
            if new_entry is None:
                # Every entry still has outstanding consumers: retry later.
                self.stats.prefetch_buffer_stalls += 1
                break
            cltq.mark_scanned(request)
            issued += 1
            self.stats.prefetches_issued += 1

            def _arrived(arrival_cycle: int, source: str, entry=new_entry) -> None:
                entry.mark_arrived(arrival_cycle, source)
                self.stats.prefetch_source[source] += 1
                self.stats.prefetches_completed += 1

            self.hierarchy.prefetch_access(
                line, cycle, _arrived, probe_l1=self.config.prefetch_probe_l1
            )

    def _prefetch_quiescent(self):
        """Event-driven loop support: the prestaging scan is a pure wait iff
        every CLTQ entry already has its prefetched bit set, or the first
        unprefetched entry needs an allocation that cannot succeed because
        every prestage entry still has outstanding consumers (one stall per
        cycle).  CLTQ contents and consumers counters only change on
        fetch/flush events, so the verdict holds for every skipped cycle."""
        if self.config.clgp_scan_per_cycle < 1:
            return 0   # the scan loop never runs
        # The verdict only depends on the first entry the next scan would
        # examine; peek_unprefetched shares next_unprefetched's staleness
        # rule but has no side effects.
        request = self.cltq.peek_unprefetched()
        if request is None:
            return 0
        if self.config.clgp_use_filtering:
            return None   # the scan would at least update filter state
        if self.prestage_buffer.get(request.line_addr) is not None:
            return None   # the scan would add a consumer
        if self.config.prefetches_per_cycle < 1:
            return 0      # the scan breaks right before allocating
        if self.prestage_buffer.has_free_entry():
            return None   # the scan would allocate and issue
        return 1          # blocked: one prefetch_buffer_stalls per cycle

    # ------------------------------------------------------------------
    # fetch-stage hooks
    # ------------------------------------------------------------------
    def _prebuffer_entry(self, line_addr: int):
        return self.prestage_buffer.get(line_addr)

    def _prebuffer_port_completion(self, start_cycle: int) -> int:
        return self.prestage_buffer.port.completion_if_issued(start_cycle)

    def _issue_prebuffer_port(self, start_cycle: int) -> None:
        self.prestage_buffer.port.issue(start_cycle)

    def _on_line_consumed(self, request, source, entry, cycle) -> None:
        line = request.line_addr
        if source == SOURCE_PREBUFFER and entry is not None:
            if self.config.clgp_free_on_use:
                # Ablation: behave like FDP's replacement (free on first use).
                entry.consumers = 0
                entry.available = True
                self.prestage_buffer.touch(entry)
            elif request.prefetched:
                self.prestage_buffer.consume(entry)
            else:
                # The fetch stage raced ahead of the prestaging scan; no
                # consumer was ever registered for this CLTQ entry.
                self.prestage_buffer.touch(entry)
            if self.config.clgp_copy_to_cache:
                # Ablation: copy the used line back into the cache hierarchy.
                if self.hierarchy.has_l0:
                    self.hierarchy.fill_l0(line)
                else:
                    self.hierarchy.fill_l1(line)
        # Lines served by L0/L1 are left where they are: CLGP never
        # replicates cache contents into other levels.

    def _on_demand_fill(self, line_addr: int, source: str, cycle: int) -> None:
        # The cache hierarchy finally provides the line (typically after a
        # misprediction); it is stored in the lower I-cache level, which acts
        # as the emergency cache (the L0 additionally captures it when
        # present).
        self.hierarchy.fill_l1(line_addr)
        if self.hierarchy.has_l0:
            self.hierarchy.fill_l0(line_addr)

    # ------------------------------------------------------------------
    def flush(self, cycle: int) -> None:
        """Branch misprediction: flush the CLTQ and reset every consumers
        counter; valid prestage lines remain usable until overwritten."""
        super().flush(cycle)
        self.cltq.flush()
        self.prestage_buffer.reset_consumers()
