"""Classic instruction prefetchers from the paper's related-work section.

These are not part of the paper's main evaluation (FDP is used as the
strongest prior scheme), but they are useful as extra baselines and for the
extension benchmarks:

* **Next-N-line prefetching** (Smith): whenever a line is fetched, the next
  ``N`` sequential lines are prefetched.
* **Target-line prefetching** (Smith & Hsu): a target table remembers the
  successor line of each fetched line, so prefetches can follow taken
  branches; combined here with next-line prefetching, as in the original
  proposal.

Both reuse FDP's prefetch buffer and prefetch-instruction-queue machinery;
they differ only in how prefetch candidates are generated (from the fetched
lines themselves rather than from the decoupled FTQ contents).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..memory.hierarchy import MemoryHierarchy
from ..workloads.bbdict import BasicBlockDictionary
from .engine import FetchEngineConfig
from .fdp import FDPEngine
from ..frontend.fetch_block import FetchBlock


class NextNLineEngine(FDPEngine):
    """Sequential next-N-line prefetching into a prefetch buffer."""

    name = "next-N-line"

    def __init__(
        self,
        config: FetchEngineConfig,
        hierarchy: MemoryHierarchy,
        bbdict: BasicBlockDictionary,
        degree: int = 2,
    ) -> None:
        super().__init__(config, hierarchy, bbdict)
        if degree < 1:
            raise ValueError("prefetch degree must be >= 1")
        self.degree = degree
        self.name = f"next-{degree}-line"
        if hierarchy.has_l0:
            self.name += "+L0"

    # Candidates come from fetched lines, not from FTQ insertion.
    def enqueue_block(self, block: FetchBlock, cycle: int) -> None:
        self.ftq.push(block)

    def _generate_candidates(self, line_addr: int) -> None:
        for i in range(1, self.degree + 1):
            self._consider_prefetch_candidate(
                line_addr + i * self.hierarchy.line_size
            )

    def _on_line_consumed(self, request, source, entry, cycle) -> None:
        super()._on_line_consumed(request, source, entry, cycle)
        self._generate_candidates(request.line_addr)


class TargetLineEngine(NextNLineEngine):
    """Next-N-line plus target-line prefetching via a successor table."""

    name = "target-line"

    def __init__(
        self,
        config: FetchEngineConfig,
        hierarchy: MemoryHierarchy,
        bbdict: BasicBlockDictionary,
        degree: int = 1,
        table_entries: int = 1024,
    ) -> None:
        super().__init__(config, hierarchy, bbdict, degree=degree)
        self.table_entries = table_entries
        self._target_table: Dict[int, int] = {}
        self._last_line: Optional[int] = None
        self.name = f"target-line+next-{degree}"
        if hierarchy.has_l0:
            self.name += "+L0"

    def _remember_transition(self, line_addr: int) -> None:
        last = self._last_line
        if last is not None and line_addr not in (
            last, last + self.hierarchy.line_size
        ):
            # Non-sequential transition: record the successor.
            if (
                len(self._target_table) >= self.table_entries
                and last not in self._target_table
            ):
                # Simple capacity handling: drop an arbitrary old mapping.
                self._target_table.pop(next(iter(self._target_table)))
            self._target_table[last] = line_addr
        self._last_line = line_addr

    def _on_line_consumed(self, request, source, entry, cycle) -> None:
        line = request.line_addr
        self._remember_transition(line)
        super()._on_line_consumed(request, source, entry, cycle)
        target = self._target_table.get(line)
        if target is not None:
            self._consider_prefetch_candidate(target)
