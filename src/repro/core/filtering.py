"""Prefetch filtering policies.

FDP issues far fewer useless prefetches when candidate lines that are
already present in the I-cache are filtered out before they enter the
prefetch instruction queue.  The paper obtains its best FDP results with
**Enqueue Cache Probe Filtering** ("an additional tag port, or replicated
tags, prior to enqueuing new prefetch requests"), so that is the default
FDP policy here; a null policy (no filtering -- what CLGP uses) and a
remove-style variant are provided for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memory.hierarchy import MemoryHierarchy


@dataclass
class FilterStats:
    candidates: int = 0
    filtered_l1: int = 0
    filtered_l0: int = 0

    @property
    def filtered(self) -> int:
        return self.filtered_l1 + self.filtered_l0

    @property
    def filter_rate(self) -> float:
        return self.filtered / self.candidates if self.candidates else 0.0


class PrefetchFilter:
    """Base class: decides whether a candidate line should be prefetched."""

    name = "none"

    def __init__(self) -> None:
        self.stats = FilterStats()

    def should_prefetch(self, line_addr: int, hierarchy: MemoryHierarchy) -> bool:
        """Return True if a prefetch for ``line_addr`` should be enqueued."""
        self.stats.candidates += 1
        return True


class NullFilter(PrefetchFilter):
    """No filtering (CLGP: "CLGP does not perform any kind of filtering")."""

    name = "none"


class EnqueueCacheProbeFilter(PrefetchFilter):
    """Probe the I-cache tags (L1 and, when present, L0) at enqueue time and
    drop candidates that are already cached."""

    name = "enqueue-cache-probe"

    def __init__(self, probe_l0: bool = True) -> None:
        super().__init__()
        self.probe_l0 = probe_l0

    def should_prefetch(self, line_addr: int, hierarchy: MemoryHierarchy) -> bool:
        self.stats.candidates += 1
        if hierarchy.l1.contains(line_addr):
            self.stats.filtered_l1 += 1
            return False
        if self.probe_l0 and hierarchy.l0 is not None and hierarchy.l0.contains(line_addr):
            self.stats.filtered_l0 += 1
            return False
        return True


def make_filter(name: Optional[str]) -> PrefetchFilter:
    """Factory: ``'none'`` / ``None`` or ``'enqueue-cache-probe'``."""
    if name in (None, "none"):
        return NullFilter()
    if name in ("enqueue-cache-probe", "ecpf", "enqueue"):
        return EnqueueCacheProbeFilter()
    raise ValueError(f"unknown prefetch filter {name!r}")
