"""Baseline fetch engines (no prefetching).

Four baseline flavours appear in the paper's Figure 1 / Figure 5:

* ``base``      -- conventional L1 I-cache, blocking multi-cycle access,
* ``base pipelined`` -- same cache with a pipelined port (one access may
  start every cycle),
* ``base + L0`` -- a small one-cycle filter cache in front of the L1,
  accessed in parallel with it,
* ``ideal``     -- every cache size reachable in one cycle (upper bound).

All of them use the same decoupled stream predictor and FTQ as the
prefetching engines; they simply never prefetch.  The pipelined/ideal
flavours are selected through the hierarchy configuration (pipelined L1
port / L1 latency override), not through engine subclasses.
"""

from __future__ import annotations

from typing import Optional

from ..frontend.fetch_block import FetchBlock, FetchLineRequest
from ..memory.hierarchy import (
    SOURCE_L0,
    SOURCE_L1,
    SOURCE_MEMORY,
    SOURCE_L2,
    MemoryHierarchy,
)
from ..workloads.bbdict import BasicBlockDictionary
from .engine import FetchEngine, FetchEngineConfig
from .ftq import FetchTargetQueue


class BaselineEngine(FetchEngine):
    """Decoupled fetch without prefetching (optionally with an L0 cache)."""

    name = "base"
    has_prebuffer = False

    def __init__(
        self,
        config: FetchEngineConfig,
        hierarchy: MemoryHierarchy,
        bbdict: BasicBlockDictionary,
    ) -> None:
        super().__init__(config, hierarchy, bbdict)
        self.ftq = FetchTargetQueue(
            capacity_blocks=config.queue_capacity_blocks,
            line_size=hierarchy.line_size,
        )
        if hierarchy.has_l0:
            self.name = "base+L0"

    # -- queue -------------------------------------------------------------
    def can_accept_block(self) -> bool:
        return self.ftq.has_space()

    def enqueue_block(self, block: FetchBlock, cycle: int) -> None:
        self.ftq.push(block)

    def _pop_next_line(self) -> Optional[FetchLineRequest]:
        return self.ftq.pop_line()

    def _peek_next_line(self) -> Optional[FetchLineRequest]:
        return self.ftq.peek_line()

    # -- hooks ----------------------------------------------------------------
    def _on_line_consumed(self, request, source, entry, cycle) -> None:
        # Filter-cache behaviour: every consumed line that did not come from
        # the L0 is installed there so near-term reuse hits in one cycle.
        if self.hierarchy.has_l0 and source in (SOURCE_L1, SOURCE_L2, SOURCE_MEMORY):
            self.hierarchy.fill_l0(request.line_addr)

    def _on_demand_fill(self, line_addr: int, source: str, cycle: int) -> None:
        self.hierarchy.fill_l1(line_addr)

    def flush(self, cycle: int) -> None:
        super().flush(cycle)
        self.ftq.flush()
