"""Fetch Directed Prefetching (FDP) -- the comparison point of the paper.

Reinman, Calder and Austin's FDP uses the decoupled front-end's FTQ to
drive prefetching: fetch blocks entering the FTQ enqueue prefetch requests
(after Enqueue Cache Probe Filtering) into a prefetch instruction queue;
requests are issued, at most one per cycle, into a small fully-associative
prefetch buffer that the fetch stage probes in parallel with the I-cache.

Key FDP behaviours reproduced here (and contrasted by CLGP):

* candidate lines already present in the I-cache are **filtered** and never
  prefetched -- which hurts when the I-cache itself is slow,
* when the fetch unit uses a prefetch-buffer line, the line is **moved into
  the cache** (L1, or the L0 when one is configured) and the buffer entry
  becomes immediately replaceable,
* prefetches are served by the L2 (optionally by the L1 when it holds the
  line), arbitrating for the shared bus at the lowest priority.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..frontend.fetch_block import FetchBlock, FetchLineRequest
from ..memory.hierarchy import (
    SOURCE_L0,
    SOURCE_L1,
    SOURCE_L2,
    SOURCE_MEMORY,
    SOURCE_PREBUFFER,
    MemoryHierarchy,
)
from ..workloads.bbdict import BasicBlockDictionary
from .engine import FetchEngine, FetchEngineConfig
from .filtering import make_filter
from .ftq import FetchTargetQueue
from .prefetch_buffer import PrefetchBuffer


class FDPEngine(FetchEngine):
    """Fetch Directed Prefetching with Enqueue Cache Probe Filtering."""

    name = "FDP"
    has_prebuffer = True

    def __init__(
        self,
        config: FetchEngineConfig,
        hierarchy: MemoryHierarchy,
        bbdict: BasicBlockDictionary,
    ) -> None:
        super().__init__(config, hierarchy, bbdict)
        self.ftq = FetchTargetQueue(
            capacity_blocks=config.queue_capacity_blocks,
            line_size=hierarchy.line_size,
        )
        self.prefetch_buffer = PrefetchBuffer(
            entries=config.prebuffer_entries,
            latency=config.prebuffer_latency,
            pipelined=config.prebuffer_pipelined,
        )
        self.filter = make_filter(config.prefetch_filter)
        self.piq: Deque[int] = deque()
        self._piq_set: set = set()   # O(1) membership mirror of the PIQ
        self.piq_drops = 0
        if hierarchy.has_l0:
            self.name = "FDP+L0"

    # ------------------------------------------------------------------
    # queue management / prefetch candidate generation
    # ------------------------------------------------------------------
    def can_accept_block(self) -> bool:
        return self.ftq.has_space()

    def enqueue_block(self, block: FetchBlock, cycle: int) -> None:
        self.ftq.push(block)
        for line in block.lines(self.hierarchy.line_size):
            self._consider_prefetch_candidate(line)

    def _consider_prefetch_candidate(self, line_addr: int) -> None:
        """Apply FDP's enqueue-time checks to one candidate line."""
        if self.prefetch_buffer.contains(line_addr):
            # Already prefetched (or being prefetched): the request is
            # satisfied by the prefetch buffer itself.
            self.stats.prefetch_source[SOURCE_PREBUFFER] += 1
            return
        if not self.filter.should_prefetch(line_addr, self.hierarchy):
            # Enqueue Cache Probe Filtering: the line is already in the
            # I-cache (L1 or L0), so no prefetch is performed.
            self.stats.prefetch_source[SOURCE_L1] += 1
            return
        if line_addr in self._piq_set:
            return
        if len(self.piq) >= self.config.piq_entries:
            self.piq_drops += 1
            return
        self.piq.append(line_addr)
        self._piq_set.add(line_addr)

    def _pop_next_line(self) -> Optional[FetchLineRequest]:
        return self.ftq.pop_line()

    def _peek_next_line(self) -> Optional[FetchLineRequest]:
        return self.ftq.peek_line()

    # ------------------------------------------------------------------
    # prefetch issue
    # ------------------------------------------------------------------
    def prefetch_tick(self, cycle: int) -> None:
        issued = 0
        while self.piq and issued < self.config.prefetches_per_cycle:
            line = self.piq[0]
            if self.prefetch_buffer.contains(line):
                self.piq.popleft()
                self._piq_set.discard(line)
                self.stats.prefetch_source[SOURCE_PREBUFFER] += 1
                continue
            entry = self.prefetch_buffer.allocate(line)
            if entry is None:
                self.stats.prefetch_buffer_stalls += 1
                break
            self.piq.popleft()
            self._piq_set.discard(line)
            issued += 1
            self.stats.prefetches_issued += 1

            def _arrived(arrival_cycle: int, source: str, entry=entry) -> None:
                entry.mark_arrived(arrival_cycle, source)
                self.stats.prefetch_source[source] += 1
                self.stats.prefetches_completed += 1

            self.hierarchy.prefetch_access(
                line, cycle, _arrived, probe_l1=self.config.prefetch_probe_l1
            )

    def _prefetch_quiescent(self):
        """Event-driven loop support: ``prefetch_tick`` is a pure wait iff
        the PIQ is empty, or its head is blocked because every prefetch
        buffer entry is still in use (which records one stall per cycle).
        PIQ contents and buffer replaceability only change on fetch-stage /
        flush events, so the verdict holds for every skipped cycle."""
        if self.config.prefetches_per_cycle < 1:
            return 0
        if not self.piq:
            return 0
        line = self.piq[0]
        if self.prefetch_buffer.contains(line):
            return None   # the tick would pop the entry (state change)
        if self.prefetch_buffer.has_free_entry():
            return None   # the tick would allocate and issue
        return 1          # blocked: one prefetch_buffer_stalls per cycle

    # ------------------------------------------------------------------
    # fetch-stage hooks
    # ------------------------------------------------------------------
    def _prebuffer_entry(self, line_addr: int):
        return self.prefetch_buffer.get(line_addr)

    def _prebuffer_port_completion(self, start_cycle: int) -> int:
        return self.prefetch_buffer.port.completion_if_issued(start_cycle)

    def _issue_prebuffer_port(self, start_cycle: int) -> None:
        self.prefetch_buffer.port.issue(start_cycle)

    def _on_line_consumed(self, request, source, entry, cycle) -> None:
        line = request.line_addr
        if source == SOURCE_PREBUFFER and entry is not None:
            # FDP transfers the used line into the I-cache -- into the L0
            # when one is present ("on a prefetch buffer hit, the cache line
            # is moved to the L0 cache, not to the L1") -- and the
            # prefetch-buffer entry becomes available for new prefetches;
            # subsequent accesses to the same line hit in the I-cache.
            self.prefetch_buffer.mark_used(entry)
            self.prefetch_buffer.remove(entry)
            if self.hierarchy.has_l0:
                self.hierarchy.fill_l0(line)
            else:
                self.hierarchy.fill_l1(line)
        elif self.hierarchy.has_l0 and source in (SOURCE_L1, SOURCE_L2, SOURCE_MEMORY):
            # The L0 is a filter cache (Kin et al.): lines fetched from the
            # slower levels are installed in it, exactly as in the
            # baseline+L0 configuration.
            self.hierarchy.fill_l0(line)

    def _on_demand_fill(self, line_addr: int, source: str, cycle: int) -> None:
        self.hierarchy.fill_l1(line_addr)

    # ------------------------------------------------------------------
    def flush(self, cycle: int) -> None:
        """Branch misprediction: FTQ and prefetch-instruction queue are
        flushed; prefetch-buffer contents are retained (they stay useful
        until replaced)."""
        super().flush(cycle)
        self.ftq.flush()
        self.piq.clear()
        self._piq_set.clear()
