"""Fully-associative prefetch buffer (FDP-style) and its base machinery.

The prefetch buffer holds prefetched cache lines next to the fetch unit so
they can be consumed without paying the I-cache latency.  In FDP an entry
becomes *available* (replaceable) as soon as the line is used once, and the
used line is promoted into the I-cache (or the L0 cache when present).

The CLGP *prestage buffer* (:mod:`repro.core.prestage_buffer`) extends this
structure with a consumers counter; both share :class:`PreBufferBase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..memory.port import AccessPort


@dataclass(slots=True)
class PreBufferEntry:
    """One line-sized entry of a prefetch / prestage buffer."""

    line_addr: int
    ready_cycle: Optional[int] = None   #: None while the prefetch is in flight
    valid: bool = False                 #: True once the line has arrived
    available: bool = True              #: FDP: replaceable after first use
    consumers: int = 0                  #: CLGP: outstanding CLTQ references
    lru_stamp: int = 0
    source: Optional[str] = None        #: where the prefetch was served from

    @property
    def in_flight(self) -> bool:
        return not self.valid

    def mark_arrived(self, cycle: int, source: str) -> None:
        self.ready_cycle = cycle
        self.valid = True
        self.source = source


@dataclass
class PreBufferStats:
    allocations: int = 0
    hits: int = 0                 #: lookups that found the line (valid or not)
    misses: int = 0
    evictions: int = 0
    discarded_unused: int = 0     #: evicted entries that were never consumed


class PreBufferBase:
    """Common storage/lookup/LRU behaviour of prefetch and prestage buffers."""

    def __init__(self, entries: int, latency: int = 1, pipelined: bool = False):
        if entries < 1:
            raise ValueError("pre-buffer needs at least one entry")
        self.capacity = entries
        self.latency = latency
        self.pipelined = pipelined
        self.port = AccessPort(latency, pipelined=pipelined)
        self._entries: Dict[int, PreBufferEntry] = {}
        self._clock = 0
        self.stats = PreBufferStats()

    # -- lookup ----------------------------------------------------------
    def get(self, line_addr: int) -> Optional[PreBufferEntry]:
        """Entry for ``line_addr`` (valid or in flight), without LRU update."""
        return self._entries.get(line_addr)

    def lookup(self, line_addr: int) -> Optional[PreBufferEntry]:
        """Entry for ``line_addr``; counts hit/miss statistics."""
        entry = self._entries.get(line_addr)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._entries

    def touch(self, entry: PreBufferEntry) -> None:
        """Update the entry's LRU stamp (most recently used)."""
        self._clock += 1
        entry.lru_stamp = self._clock

    # -- allocation -------------------------------------------------------
    def replaceable_entries(self) -> List[PreBufferEntry]:
        """Entries eligible for replacement, oldest (LRU) first.

        Subclasses define eligibility (FDP: ``available``; CLGP:
        ``consumers == 0``).
        """
        raise NotImplementedError

    def has_free_entry(self) -> bool:
        return len(self._entries) < self.capacity or self._victim() is not None

    def _victim(self) -> Optional[PreBufferEntry]:
        """Preferred replacement victim (same choice as
        ``replaceable_entries()[0]``, without building/sorting the list)."""
        candidates = self.replaceable_entries()
        return candidates[0] if candidates else None

    def allocate(self, line_addr: int) -> Optional[PreBufferEntry]:
        """Allocate an entry for a new prefetch of ``line_addr``.

        Returns ``None`` when no entry is replaceable.  The caller is
        responsible for not allocating a line that is already present.
        """
        if line_addr in self._entries:
            raise ValueError(f"line {line_addr:#x} already in the pre-buffer")
        if len(self._entries) >= self.capacity:
            victim = self._victim()
            if victim is None:
                return None
            self._evict(victim)
        entry = PreBufferEntry(line_addr=line_addr, available=False)
        self._entries[line_addr] = entry
        self.touch(entry)
        self.stats.allocations += 1
        return entry

    def _evict(self, entry: PreBufferEntry) -> None:
        del self._entries[entry.line_addr]
        self.stats.evictions += 1
        if entry.valid and not entry.available and entry.consumers == 0:
            # The line arrived but was never consumed by the fetch unit
            # (typically a wrong-path prefetch).
            self.stats.discarded_unused += 1

    def remove(self, entry: PreBufferEntry) -> bool:
        """Explicitly remove an entry (e.g. FDP transferring a used line to
        the I-cache).  Returns False if the entry was already gone."""
        current = self._entries.get(entry.line_addr)
        if current is not entry:
            return False
        del self._entries[entry.line_addr]
        return True

    # -- maintenance -------------------------------------------------------
    def clear(self) -> None:
        self._entries.clear()

    def entries(self) -> List[PreBufferEntry]:
        return list(self._entries.values())

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class PrefetchBuffer(PreBufferBase):
    """FDP prefetch buffer.

    "Every entry is marked as replaceable when it is used" -- so used
    (available) entries are preferred victims, oldest first.  Valid entries
    that were never consumed (e.g. wrong-path prefetches) may also be
    replaced, after all used entries, so stale lines cannot clog the buffer
    forever.  In-flight entries are never replaced.
    """

    def replaceable_entries(self) -> List[PreBufferEntry]:
        valid = [e for e in self._entries.values() if e.valid]
        return sorted(valid, key=lambda e: (not e.available, e.lru_stamp))

    def _victim(self) -> Optional[PreBufferEntry]:
        best = None
        best_key = None
        for e in self._entries.values():
            if not e.valid:
                continue
            key = (not e.available, e.lru_stamp)
            if best_key is None or key < best_key:
                best_key = key
                best = e
        return best

    def mark_used(self, entry: PreBufferEntry) -> None:
        """Called when the fetch unit consumes the line: the entry becomes
        available for new prefetches."""
        entry.available = True
        self.touch(entry)
