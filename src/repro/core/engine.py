"""Fetch-engine base class: the fetch stage shared by every configuration.

A fetch engine owns

* the decoupling queue (FTQ at fetch-block granularity, or CLTQ at
  cache-line granularity),
* the pre-buffer (prefetch buffer for FDP, prestage buffer for CLGP,
  nothing for the baselines),
* the fetch stage proper: for each queued cache line it probes, *in
  parallel*, the pre-buffer, the L0 cache (when present) and the L1
  I-cache, picks whichever source can return the line first, and delivers
  up to ``fetch_width`` instructions per cycle to the back-end.  Lines
  absent everywhere become demand requests to L2/memory over the shared
  bus.

Subclasses plug in the queue type, the prefetch algorithm
(:meth:`prefetch_tick`), what happens when a line is consumed
(:meth:`_on_line_consumed` -- e.g. FDP promotes pre-buffer lines into the
cache, CLGP decrements the consumers counter), where demand misses fill
(:meth:`_on_demand_fill`), and what a branch-misprediction flush does
(:meth:`flush`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from ..frontend.fetch_block import (
    FetchBlock,
    FetchLineRequest,
    FetchedInstruction,
)
from ..workloads.isa import INSTRUCTION_BYTES
from ..memory.hierarchy import (
    SOURCE_L0,
    SOURCE_L1,
    SOURCE_MEMORY,
    SOURCE_PREBUFFER,
    SOURCE_L2,
    FETCH_SOURCES,
    MemoryHierarchy,
)
from ..workloads.bbdict import BasicBlockDictionary
from .prefetch_buffer import PreBufferEntry

#: Tie-break order when several sources could return the line in the same
#: cycle: prefer the cheapest/closest structure.
_SOURCE_ORDER = {
    SOURCE_PREBUFFER: 0,
    SOURCE_L0: 1,
    SOURCE_L1: 2,
    SOURCE_L2: 3,
    SOURCE_MEMORY: 4,
}


@dataclass
class FetchEngineConfig:
    """Structural knobs of the front-end (engine-agnostic subset).

    Attributes largely mirror the paper's Table 2 plus the per-technology
    pre-buffer sizing of Section 5.
    """

    fetch_width: int = 4                 #: instructions delivered per cycle
    queue_capacity_blocks: int = 8       #: FTQ/CLTQ capacity in fetch blocks
    fetch_lookahead: int = 2             #: outstanding line accesses
    prebuffer_entries: int = 4           #: pre-buffer entries (lines)
    prebuffer_latency: int = 1           #: pre-buffer access latency (cycles)
    prebuffer_pipelined: bool = False    #: pipelined pre-buffer (PB:16 configs)
    prefetches_per_cycle: int = 1        #: new prefetches issued per cycle
    prefetch_probe_l1: bool = True       #: prefetches may be served by L1
    #: FDP: prefetch filtering policy ('enqueue-cache-probe' or 'none')
    prefetch_filter: str = "enqueue-cache-probe"
    piq_entries: int = 16                #: FDP prefetch-instruction-queue size
    #: CLGP: CLTQ entries examined per cycle by the prestaging algorithm
    clgp_scan_per_cycle: int = 4
    # --- ablation switches (CLGP design choices, see DESIGN.md section 5) ---
    clgp_free_on_use: bool = False       #: replace prestage entries on first use
    clgp_copy_to_cache: bool = False     #: copy consumed lines into the cache
    clgp_use_filtering: bool = False     #: apply enqueue filtering to CLGP


@dataclass
class FetchStats:
    """Counters kept by the fetch engine."""

    lines_fetched: int = 0
    instructions_delivered: int = 0
    wrong_path_instructions: int = 0
    fetch_source_lines: Dict[str, int] = field(
        default_factory=lambda: {s: 0 for s in FETCH_SOURCES}
    )
    fetch_source_instructions: Dict[str, int] = field(
        default_factory=lambda: {s: 0 for s in FETCH_SOURCES}
    )
    prefetch_source: Dict[str, int] = field(
        default_factory=lambda: {s: 0 for s in FETCH_SOURCES}
    )
    prefetches_issued: int = 0
    prefetches_completed: int = 0
    prefetch_buffer_stalls: int = 0      #: prefetches delayed: no free entry
    flushes: int = 0
    #: Cycles in which the fetch stage delivered nothing, keyed by cause:
    #: 'empty' (no pending line request), 'PB-wait' (waiting for an
    #: in-flight prefetch), 'backend-full' (RUU back-pressure) or the
    #: source whose access latency the stage was waiting out.
    stall_cycles: Dict[str, int] = field(default_factory=dict)

    def record_stall(self, cause: str) -> None:
        self.stall_cycles[cause] = self.stall_cycles.get(cause, 0) + 1

    def fetch_source_fractions(self, per_instruction: bool = True) -> Dict[str, float]:
        counts = (
            self.fetch_source_instructions if per_instruction
            else self.fetch_source_lines
        )
        total = sum(counts.values())
        if not total:
            return {s: 0.0 for s in counts}
        return {s: c / total for s, c in counts.items()}

    def prefetch_source_fractions(self) -> Dict[str, float]:
        total = sum(self.prefetch_source.values())
        if not total:
            return {s: 0.0 for s in self.prefetch_source}
        return {s: c / total for s, c in self.prefetch_source.items()}


@dataclass(slots=True)
class _InflightLine:
    """A line access in progress in the fetch stage."""

    request: FetchLineRequest
    ready_cycle: Optional[int] = None
    source: Optional[str] = None
    pb_entry: Optional[PreBufferEntry] = None
    waiting_on_prebuffer: bool = False
    delivered: int = 0
    #: Instruction classes of the parent block, resolved once when the line
    #: access starts so delivery cycles never re-enter the bbdict walk.
    classes: Optional[Tuple] = None


class FetchEngine:
    """Base class for all fetch engines (baseline, FDP, CLGP)."""

    #: Human-readable configuration name, set by subclasses.
    name = "base"
    #: Whether the engine owns a pre-buffer (used by reports).
    has_prebuffer = False

    def __init__(
        self,
        config: FetchEngineConfig,
        hierarchy: MemoryHierarchy,
        bbdict: BasicBlockDictionary,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.bbdict = bbdict
        self.stats = FetchStats()
        self._inflight: Deque[_InflightLine] = deque()

    # ==================================================================
    # interface towards the prediction unit (queue management)
    # ==================================================================
    def can_accept_block(self) -> bool:
        raise NotImplementedError

    def enqueue_block(self, block: FetchBlock, cycle: int) -> None:
        raise NotImplementedError

    def _pop_next_line(self) -> Optional[FetchLineRequest]:
        """Next cache-line request from the decoupling queue."""
        raise NotImplementedError

    def _peek_next_line(self) -> Optional[FetchLineRequest]:
        """Next cache-line request without consuming it."""
        raise NotImplementedError

    # ==================================================================
    # engine-specific hooks
    # ==================================================================
    def _prebuffer_entry(self, line_addr: int) -> Optional[PreBufferEntry]:
        """Entry of the pre-buffer holding ``line_addr`` (None: no buffer)."""
        return None

    def _on_line_consumed(
        self, request: FetchLineRequest, source: str,
        entry: Optional[PreBufferEntry], cycle: int,
    ) -> None:
        """Called when the last instruction of a line has been delivered."""

    def _on_demand_fill(self, line_addr: int, source: str, cycle: int) -> None:
        """Called when a demand miss returns from L2/memory.  The default
        fills the L1 I-cache (conventional behaviour)."""
        self.hierarchy.fill_l1(line_addr)

    def prefetch_tick(self, cycle: int) -> None:
        """Issue prefetches for this cycle (no-op for the baselines)."""

    def _prefetch_quiescent(self) -> Optional[int]:
        """Whether :meth:`prefetch_tick` is provably a pure wait right now.

        Used by the simulator's event-driven loop.  Returns ``None`` when
        the next ``prefetch_tick`` could change machine state (so cycles
        must not be skipped); otherwise the number of
        ``prefetch_buffer_stalls`` the tick would record (0 or 1), which the
        loop replays for every skipped cycle.  Engines without a prefetcher
        are always quiescent.
        """
        return 0

    def flush(self, cycle: int) -> None:
        """Branch misprediction: discard queued fetch requests.

        Subclasses extend this (e.g. CLGP resets consumers counters).  The
        in-flight line accesses of the fetch stage are abandoned because
        they belong to the wrong path.
        """
        self.stats.flushes += 1
        self._inflight.clear()

    # ==================================================================
    # the fetch stage
    # ==================================================================
    def fetch_tick(self, cycle: int, backend) -> int:
        """Run the fetch stage for one cycle.

        Returns the number of instructions delivered to the back-end.
        """
        # 1. keep the line-access pipeline full (models fetch run-ahead /
        #    pipelined cache accesses).  A line that is nowhere on the fast
        #    path (a demand miss that must go to L2/memory) is only started
        #    once it reaches the head: the fetch unit has a single
        #    outstanding demand miss, so only the prefetcher can overlap
        #    long-latency instruction fetches.
        while len(self._inflight) < self.config.fetch_lookahead:
            upcoming = self._peek_next_line()
            if upcoming is None:
                break
            if self._inflight and not self._line_on_fast_path(upcoming.line_addr):
                break
            request = self._pop_next_line()
            self._inflight.append(self._start_line_access(request, cycle))

        if not self._inflight:
            self.stats.record_stall("empty")
            return 0

        # 2. resolve "waiting on an in-flight prefetch" heads.
        head = self._inflight[0]
        if head.ready_cycle is None and head.waiting_on_prebuffer:
            self._poll_prebuffer_wait(head, cycle)

        # 3. deliver instructions from the head line.
        if head.ready_cycle is None or cycle < head.ready_cycle:
            if head.waiting_on_prebuffer or (
                head.ready_cycle is None and head.pb_entry is not None
            ):
                self.stats.record_stall("PB-wait")
            else:
                self.stats.record_stall(head.source or "demand")
            return 0
        delivered = self._deliver(head, cycle, backend)
        if delivered == 0:
            self.stats.record_stall("backend-full")
        return delivered

    def _line_on_fast_path(self, line_addr: int) -> bool:
        """True when the line can be obtained without a demand request to
        L2/memory: present (or in flight) in the pre-buffer, in the L0, or
        in the L1."""
        if self._prebuffer_entry(line_addr) is not None:
            return True
        hierarchy = self.hierarchy
        if hierarchy.l0 is not None and hierarchy.l0.contains(line_addr):
            return True
        return hierarchy.l1.contains(line_addr)

    # ------------------------------------------------------------------
    def _start_line_access(self, request: FetchLineRequest, cycle: int) -> _InflightLine:
        line = request.line_addr
        infl = _InflightLine(request=request)
        infl.classes = request.block.instr_classes(self.bbdict)
        hierarchy = self.hierarchy

        candidates = []
        pb_entry = self._prebuffer_entry(line)
        if pb_entry is not None and pb_entry.valid:
            start = max(cycle, pb_entry.ready_cycle or cycle)
            completion = self._prebuffer_port_completion(start)
            candidates.append((completion, SOURCE_PREBUFFER))
        if hierarchy.l0 is not None and hierarchy.l0.contains(line):
            candidates.append(
                (hierarchy.l0_port.completion_if_issued(cycle), SOURCE_L0)
            )
        if hierarchy.l1.contains(line):
            candidates.append(
                (hierarchy.l1_port.completion_if_issued(cycle), SOURCE_L1)
            )

        if candidates:
            candidates.sort(key=lambda c: (c[0], _SOURCE_ORDER[c[1]]))
            ready, source = candidates[0]
            infl.ready_cycle = ready
            infl.source = source
            if source == SOURCE_PREBUFFER:
                infl.pb_entry = pb_entry
                self._issue_prebuffer_port(max(cycle, pb_entry.ready_cycle or cycle))
            elif source == SOURCE_L0:
                hierarchy.l0.lookup(line)
                hierarchy.l0_port.issue(cycle)
            else:
                hierarchy.l1.lookup(line)
                hierarchy.l1_port.issue(cycle)
            return infl

        if pb_entry is not None:
            # The line is being prefetched: wait for it rather than issuing
            # a duplicate request (this is how prefetching hides partial
            # latency even when it is not fully timely).
            infl.pb_entry = pb_entry
            infl.waiting_on_prebuffer = True
            return infl

        # Demand miss: nothing on the fast path has the line.
        hierarchy.l1.lookup(line)  # counts the miss in the L1 statistics

        def _arrived(arrival_cycle: int, source: str,
                     infl=infl, line=line) -> None:
            infl.ready_cycle = arrival_cycle
            infl.source = source
            self._on_demand_fill(line, source, arrival_cycle)

        hierarchy.demand_instruction_access(line, cycle, _arrived)
        return infl

    # -- pre-buffer port helpers (subclasses with a buffer override) -------
    def _prebuffer_port_completion(self, start_cycle: int) -> int:
        raise NotImplementedError

    def _issue_prebuffer_port(self, start_cycle: int) -> None:
        raise NotImplementedError

    def _poll_prebuffer_wait(self, infl: _InflightLine, cycle: int) -> None:
        entry = infl.pb_entry
        if entry is None:
            infl.waiting_on_prebuffer = False
            return
        if entry.valid:
            start = max(cycle, entry.ready_cycle or cycle)
            infl.ready_cycle = self._prebuffer_port_completion(start)
            self._issue_prebuffer_port(start)
            infl.source = SOURCE_PREBUFFER
            infl.waiting_on_prebuffer = False
            return
        # The entry may have been replaced while we were waiting (e.g. the
        # consumers counters were reset by a misprediction and the entry was
        # reallocated).  Escalate to a demand request so fetch cannot hang.
        current = self._prebuffer_entry(infl.request.line_addr)
        if current is not entry:
            infl.waiting_on_prebuffer = False
            infl.pb_entry = None
            line = infl.request.line_addr
            self.hierarchy.l1.lookup(line)

            def _arrived(arrival_cycle: int, source: str,
                         infl=infl, line=line) -> None:
                infl.ready_cycle = arrival_cycle
                infl.source = source
                self._on_demand_fill(line, source, arrival_cycle)

            self.hierarchy.demand_instruction_access(line, cycle, _arrived)

    # ------------------------------------------------------------------
    def _deliver(self, infl: _InflightLine, cycle: int, backend) -> int:
        request = infl.request
        block = request.block
        classes = infl.classes
        if classes is None:   # line never went through _start_line_access
            classes = infl.classes = block.instr_classes(self.bbdict)
        source = infl.source
        stats = self.stats
        delivered = 0
        wrong = 0
        if infl.delivered == 0:
            # First delivery cycle of this line: account the line fetch.
            stats.lines_fetched += 1
            stats.fetch_source_lines[source] += 1

        fetch_width = self.config.fetch_width
        num_instructions = request.num_instructions
        first_index = request.first_instr_index
        block_start = block.start
        block_wrong_path = block.wrong_path
        correct_prefix = block.correct_prefix
        mispredicted = block.mispredicted
        # Scalar fast path when the back-end supports it; test doubles that
        # only implement has_space()/dispatch(FetchedInstruction) still work.
        dispatch_scalars = getattr(backend, "dispatch_scalars", None)
        dispatch = backend.dispatch
        free_slots = getattr(backend, "free_slots", None)
        budget = min(fetch_width, num_instructions - infl.delivered)
        if free_slots is not None:
            budget = min(budget, free_slots())
        while delivered < budget:
            if free_slots is None and not backend.has_space():
                break
            index = first_index + infl.delivered
            wrong_path = block_wrong_path or index >= correct_prefix
            triggers_redirect = mispredicted and index == correct_prefix - 1
            if dispatch_scalars is not None:
                accepted = dispatch_scalars(
                    block_start + index * INSTRUCTION_BYTES,
                    classes[index], wrong_path, triggers_redirect, cycle,
                )
            else:
                accepted = dispatch(
                    FetchedInstruction(
                        addr=block_start + index * INSTRUCTION_BYTES,
                        cls=classes[index],
                        wrong_path=wrong_path,
                        triggers_redirect=triggers_redirect,
                        redirect_target=(
                            block.redirect_target if triggers_redirect else None
                        ),
                        fetch_source=source,
                    ),
                    cycle,
                )
            if not accepted:
                break
            infl.delivered += 1
            delivered += 1
            if wrong_path:
                wrong += 1

        if delivered:
            stats.instructions_delivered += delivered
            stats.fetch_source_instructions[source] += delivered
            stats.wrong_path_instructions += wrong

        if infl.delivered >= num_instructions:
            self._on_line_consumed(request, source, infl.pb_entry, cycle)
            self._inflight.popleft()
        return delivered

    # ==================================================================
    # reporting helpers
    # ==================================================================
    def describe(self) -> str:
        """One-line description used in reports."""
        return self.name
